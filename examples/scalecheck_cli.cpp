// scalecheck_cli: run any bug scenario / mode / scale from the command line.
//
//   scalecheck_cli --bug=C3831 --mode=real --nodes=64
//   scalecheck_cli --bug=C5456 --mode=full --nodes=128 --seed=7 --jobs=4
//   scalecheck_cli --bug=C3881 --mode=colo --nodes=96 --trace
//   scalecheck_cli --bug=C3831 --mode=full --nodes=64 --json
//   scalecheck_cli --bug=C3831 --mode=real --nodes=64 --faults=standard-chaos
//
// --faults=NAME injects a seed-deterministic fault schedule (partitions,
// crash+restart, slow nodes, memory pressure) into every run; see
// src/faults/fault_plan.h for the named plans.
//
// Modes (src/scalecheck/cli_modes.h): suite | search | repro | real.
// --mode=suite picks simulated deployments via --sim-modes= (default all
// four: the Figure-3 grid through the host-parallel ExperimentSuite; --jobs=N
// adds workers without changing a single output byte). --sim-modes=memoize
// writes /tmp/scalecheck_<bug>.memo; --sim-modes=replay reads it — memoize
// once, replay as many times as debugging needs, the Figure 2 workflow.
// --mode=real boots N in-process nodes on REAL localhost TCP sockets and
// wall-clock timers and runs them to gossip convergence. With --faults=NAME
// the link-level events of the plan are replayed against the sockets
// (rescaled to the real gossip interval) and the run must then pass the
// partition-heals reconvergence bound, or the CLI exits 4.
// Old spellings (full/colo/memoize/replay/real-scale) still parse as
// deprecated aliases for one release.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "src/cluster/workload.h"
#include "src/common/logging.h"
#include "src/faults/fault_search.h"
#include "src/net/real_cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/cli_modes.h"
#include "src/scalecheck/experiment_suite.h"
#include "src/scalecheck/scale_check.h"

using namespace scalecheck;

namespace {

struct CliOptions {
  std::string bug = "C3831";
  std::string mode = "suite";
  std::string sim_modes;  // --mode=suite: CSV of real|colo|memoize|replay
  int nodes = 64;
  uint64_t seed = 0x5ca1ec4ecULL;
  int jobs = 1;
  bool trace = false;
  bool json = false;
  std::string faults;
  // 0 keeps the spec's default lateness budgets; > 0 sets the invalid
  // threshold to this many milliseconds (degraded at half of it).
  double guard_lateness_p99_ms = 0.0;
  bool have_replay_policy = false;
  ReplayPolicy replay_policy = ReplayPolicy::kFallbackToModelled;
  // ---- ChaosSearch ----------------------------------------------------------
  int search_budget = 32;
  uint64_t search_seed = 0xc4a05ULL;
  bool plant_bug = false;
  std::string repro_out;  // --mode=search: save the repro artifact here
  std::string repro;      // --mode=repro: the artifact to replay
  // ---- Data path ------------------------------------------------------------
  // Workload override: the KV invariants are only checkable on workloads
  // that preserve key ownership (steady-state / failover), and no catalog
  // bug uses one — a durability smoke needs to swap the workload in.
  bool have_workload = false;
  WorkloadKind workload = WorkloadKind::kSteadyState;
  bool have_kv_consistency = false;
  KvConsistency kv_consistency = KvConsistency::kQuorum;
  bool kv_wal = false;        // durable replica path (WAL + group commit)
  bool plant_kv_bug = false;  // plant the ack-before-sync durability bug
  bool plant_repair_storm = false;  // plant the unthrottled repair-storm bug
  double kv_rate = 0.0;       // sim modes: KV client ops/second (0 = spec's)
  bool kv_repair = false;     // anti-entropy repair (Merkle exchange)
  int64_t kv_repair_rate = 0;       // repair stream budget B/s (0 = default)
  int kv_repair_max_sessions = 0;   // concurrent repair sessions (0 = default)
  bool have_kv_key_dist = false;
  KvKeyDist kv_key_dist = KvKeyDist::kUniform;
  double kv_zipf_s = 1.0;
  // ---- Real sockets (--mode=real) -----------------------------------------
  int real_seconds = 30;  // convergence timeout, wall clock
  int gossip_ms = 100;    // gossip round interval
  int kv_ops = 0;         // quorum write+read pairs after convergence
};

bool ParseReplayPolicy(const char* name, ReplayPolicy* out) {
  if (std::strcmp(name, "strict") == 0) {
    *out = ReplayPolicy::kStrict;
  } else if (std::strcmp(name, "warn") == 0) {
    *out = ReplayPolicy::kWarn;
  } else if (std::strcmp(name, "fallback") == 0) {
    *out = ReplayPolicy::kFallbackToModelled;
  } else {
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* bug = value_of("--bug=")) {
      out->bug = bug;
    } else if (const char* mode = value_of("--mode=")) {
      out->mode = mode;
    } else if (const char* modes = value_of("--sim-modes=")) {
      out->sim_modes = modes;
    } else if (const char* secs = value_of("--real-seconds=")) {
      out->real_seconds = std::atoi(secs);
      if (out->real_seconds < 1) {
        std::fprintf(stderr, "--real-seconds needs a positive value\n");
        return false;
      }
    } else if (const char* ms = value_of("--gossip-ms=")) {
      out->gossip_ms = std::atoi(ms);
      if (out->gossip_ms < 1) {
        std::fprintf(stderr, "--gossip-ms needs a positive value\n");
        return false;
      }
    } else if (const char* ops = value_of("--kv-ops=")) {
      out->kv_ops = std::atoi(ops);
      if (out->kv_ops < 0) {
        std::fprintf(stderr, "--kv-ops cannot be negative\n");
        return false;
      }
    } else if (const char* wl = value_of("--workload=")) {
      Result<WorkloadKind> parsed = WorkloadKindFromName(wl);
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown workload '%s'\n", wl);
        return false;
      }
      out->workload = parsed.value();
      out->have_workload = true;
    } else if (const char* level = value_of("--kv-consistency=")) {
      Result<KvConsistency> parsed = KvConsistencyFromName(level);
      if (!parsed.ok()) {
        std::fprintf(stderr, "unknown consistency level '%s'\n", level);
        return false;
      }
      out->kv_consistency = parsed.value();
      out->have_kv_consistency = true;
    } else if (const char* rate = value_of("--kv-rate=")) {
      out->kv_rate = std::atof(rate);
      if (out->kv_rate < 0.0) {
        std::fprintf(stderr, "--kv-rate cannot be negative\n");
        return false;
      }
    } else if (const char* nodes = value_of("--nodes=")) {
      out->nodes = std::atoi(nodes);
    } else if (const char* seed = value_of("--seed=")) {
      out->seed = std::strtoull(seed, nullptr, 0);
    } else if (const char* jobs = value_of("--jobs=")) {
      out->jobs = std::atoi(jobs);
    } else if (const char* faults = value_of("--faults=")) {
      if (!FaultPlan::IsKnown(faults)) {
        std::fprintf(stderr, "unknown fault plan '%s'\n", faults);
        return false;
      }
      out->faults = faults;
    } else if (const char* ms = value_of("--guard-lateness-p99-ms=")) {
      out->guard_lateness_p99_ms = std::atof(ms);
      if (out->guard_lateness_p99_ms <= 0.0) {
        std::fprintf(stderr, "--guard-lateness-p99-ms needs a positive value\n");
        return false;
      }
    } else if (const char* policy = value_of("--replay-policy=")) {
      if (!ParseReplayPolicy(policy, &out->replay_policy)) {
        std::fprintf(stderr, "unknown replay policy '%s'\n", policy);
        return false;
      }
      out->have_replay_policy = true;
    } else if (const char* budget = value_of("--search-budget=")) {
      out->search_budget = std::atoi(budget);
      if (out->search_budget < 1) {
        std::fprintf(stderr, "--search-budget needs a positive value\n");
        return false;
      }
    } else if (const char* sseed = value_of("--search-seed=")) {
      out->search_seed = std::strtoull(sseed, nullptr, 0);
    } else if (const char* path = value_of("--repro-out=")) {
      out->repro_out = path;
    } else if (const char* path = value_of("--repro=")) {
      out->repro = path;
    } else if (arg == "--plant-bug") {
      out->plant_bug = true;
    } else if (arg == "--plant-kv-bug") {
      out->plant_kv_bug = true;
    } else if (const char* which = value_of("--plant-kv-bug=")) {
      if (std::strcmp(which, "ack-before-sync") == 0) {
        out->plant_kv_bug = true;
      } else if (std::strcmp(which, "repair-storm") == 0) {
        out->plant_repair_storm = true;
      } else {
        std::fprintf(stderr, "unknown kv bug '%s'\n", which);
        return false;
      }
    } else if (arg == "--kv-repair") {
      out->kv_repair = true;
    } else if (const char* rate = value_of("--kv-repair-rate=")) {
      out->kv_repair_rate = std::strtoll(rate, nullptr, 0);
      if (out->kv_repair_rate < 1) {
        std::fprintf(stderr, "--kv-repair-rate needs a positive byte rate\n");
        return false;
      }
    } else if (const char* sess = value_of("--kv-repair-max-sessions=")) {
      out->kv_repair_max_sessions = std::atoi(sess);
      if (out->kv_repair_max_sessions < 1) {
        std::fprintf(stderr,
                     "--kv-repair-max-sessions needs a positive value\n");
        return false;
      }
    } else if (const char* dist = value_of("--kv-key-dist=")) {
      if (std::strcmp(dist, "uniform") == 0) {
        out->kv_key_dist = KvKeyDist::kUniform;
      } else if (std::strncmp(dist, "zipf", 4) == 0) {
        out->kv_key_dist = KvKeyDist::kZipf;
        if (dist[4] == ':') {
          out->kv_zipf_s = std::atof(dist + 5);
          if (out->kv_zipf_s <= 0.0) {
            std::fprintf(stderr, "zipf exponent must be positive\n");
            return false;
          }
        } else if (dist[4] != '\0') {
          std::fprintf(stderr, "unknown key distribution '%s'\n", dist);
          return false;
        }
      } else {
        std::fprintf(stderr, "unknown key distribution '%s'\n", dist);
        return false;
      }
      out->have_kv_key_dist = true;
    } else if (arg == "--kv-wal") {
      out->kv_wal = true;
    } else if (arg == "--trace") {
      out->trace = true;
    } else if (arg == "--json") {
      out->json = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return out->nodes >= 2;
}

void Usage() {
  std::string bugs;
  for (const std::string& id : BugCatalog::Ids()) {
    bugs += " " + id;
  }
  std::printf(
      "usage: scalecheck_cli [--bug=ID] [--mode=M] [--nodes=N] [--seed=S]\n"
      "                      [--jobs=J] [--faults=PLAN] [--trace] [--json]\n"
      "                      [--sim-modes=CSV] [--guard-lateness-p99-ms=MS]\n"
      "                      [--replay-policy=P] [--search-budget=B]\n"
      "                      [--search-seed=S] [--plant-bug] [--repro-out=FILE]\n"
      "                      [--repro=FILE] [--real-seconds=T] [--gossip-ms=MS]\n"
      "                      [--kv-ops=K] [--kv-rate=OPS] [--kv-wal]\n"
      "                      [--kv-consistency=L] [--plant-kv-bug[=B]]\n"
      "                      [--kv-repair] [--kv-repair-rate=BYTES]\n"
      "                      [--kv-repair-max-sessions=S] [--kv-key-dist=D]\n"
      "                      [--workload=W]\n"
      "  bugs: %s\n"
      "  modes: suite search repro real\n"
      "         (deprecated aliases: full colo memoize replay real-scale)\n"
      "  --sim-modes=CSV             --mode=suite only: which simulated\n"
      "                              deployments (real|colo|memoize|replay;\n"
      "                              default all four, the comparison grid)\n"
      "  --mode=real                 boot N in-process nodes on REAL localhost\n"
      "                              TCP sockets + wall-clock timers, run to\n"
      "                              gossip convergence, export RunResult JSON\n"
      "  --real-seconds=T            real mode: convergence timeout (default 30)\n"
      "  --gossip-ms=MS              real mode: gossip interval (default 100)\n"
      "  --kv-ops=K                  real mode: K quorum writes+reads after\n"
      "                              convergence (default 0 = membership only)\n"
      "  --kv-rate=OPS               sim modes: KV client load in ops/second\n"
      "                              (overrides the spec; > 0 enables the KV\n"
      "                              service and load driver)\n"
      "  --kv-consistency=L          one | quorum | all — ack threshold for KV\n"
      "                              reads and writes (default quorum)\n"
      "  --kv-wal                    durable replica path: per-node WAL with\n"
      "                              group commit; crash loses the unsynced\n"
      "                              tail, restart replays the durable prefix;\n"
      "                              arms the kv-durability invariant\n"
      "  --plant-kv-bug[=B]          plant a KV bug: ack-before-sync (default;\n"
      "                              the crash-durability search smoke target,\n"
      "                              needs --kv-wal) or repair-storm (repair\n"
      "                              ignores its throttle and floods full-range\n"
      "                              streams; needs --kv-repair — the budget\n"
      "                              facet of replica-convergence flags it)\n"
      "  --kv-repair                 anti-entropy repair: periodic Merkle-tree\n"
      "                              exchange with co-replicas streams only\n"
      "                              differing key ranges; arms the\n"
      "                              replica-convergence invariant\n"
      "  --kv-repair-rate=BYTES      repair stream budget in bytes/second per\n"
      "                              node (default 262144)\n"
      "  --kv-repair-max-sessions=S  concurrent repair sessions per node\n"
      "                              (default 1)\n"
      "  --kv-key-dist=D             uniform | zipf[:s] — KV driver key\n"
      "                              popularity (zipf default s=1.0)\n"
      "  --workload=W                override the bug's workload: steady-state |\n"
      "                              decommission | scale-out | bootstrap-fresh |\n"
      "                              failover | rebalance (KV invariants only\n"
      "                              probe on steady-state and failover)\n"
      "  fault plans: none standard-chaos partition crash-restart slow-node\n"
      "               memory-pressure island\n"
      "               (island = the ChaosSearch islanding reproducer: one full\n"
      "               partition of node N-1 for ~32 gossip rounds)\n"
      "               --mode=real replays link-level plans against the TCP\n"
      "               carrier, rescaled to --gossip-ms, and exits 4 if the\n"
      "               cluster fails the partition-heals reconvergence bound\n"
      "  --guard-lateness-p99-ms=MS  fidelity budget: p99 event lateness above\n"
      "                              MS ms invalidates the run (degraded at MS/2)\n"
      "  --replay-policy=P           strict | warn | fallback — what a replay\n"
      "                              divergence does (strict aborts + invalid)\n"
      "  --mode=search               ChaosSearch: explore seed-deterministic\n"
      "                              fault plans, score by invariant violations,\n"
      "                              shrink the first hit to a minimal reproducer\n"
      "  --search-budget=B           candidate plans to try (default 32)\n"
      "  --search-seed=S             seed for plan generation (not the sim seed)\n"
      "  --plant-bug                 plant the recovery bug the search smoke\n"
      "                              must find (see CheckOptions)\n"
      "  --repro-out=FILE            search: write the repro artifact here\n"
      "  --repro=FILE                replay an artifact; must reproduce the\n"
      "                              identical violation report\n"
      "exit codes: 0 ok, 1 runtime error, 2 usage, 3 fidelity verdict invalid,\n"
      "            4 invariant violation\n",
      bugs.c_str());
}

// Exit code for a finished run (RunExitCode): 4 flags an invariant violation,
// 3 an invalid fidelity verdict — so CI gates can reject broken clusters and
// untrustworthy colocation results without parsing JSON.
int VerdictExitCode(const RunResult& result) { return RunExitCode(result); }

int RunOne(const BugSpec& spec, const CliOptions& cli, RunMode mode) {
  std::string memo_path = "/tmp/scalecheck_" + spec.id + ".memo";
  MemoStore store;
  MemoStore* store_ptr = nullptr;
  if (mode == RunMode::kMemoize) {
    store_ptr = &store;
  } else if (mode == RunMode::kPilReplay) {
    // The structured loader distinguishes a missing DB from a corrupt,
    // truncated, or version-skewed one — each needs different operator action.
    Result<MemoStore> loaded = MemoStore::Load(memo_path);
    if (!loaded.ok()) {
      if (loaded.status().code() == StatusCode::kNotFound) {
        std::fprintf(stderr, "no memo DB at %s — run --mode=memoize first\n",
                     memo_path.c_str());
      } else {
        std::fprintf(stderr, "memo DB unusable (%s) — re-run --mode=memoize\n",
                     loaded.status().ToString().c_str());
      }
      return 1;
    }
    store = std::move(loaded.value());
    std::printf("loaded memo DB: %zu records from %s\n", store.size(),
                memo_path.c_str());
    store_ptr = &store;
  }

  // Driven through Cluster directly (not RunSingle) because the --trace dump
  // needs the cluster's trace object after the run.
  Cluster::Options options;
  options.config = spec.MakeConfig(cli.nodes, mode, cli.seed);
  options.workload = spec.MakeWorkload(cli.nodes);
  options.memo_store = store_ptr;
  options.enable_trace = cli.trace;
  options.faults = spec.MakeFaultPlan(cli.nodes, cli.seed);
  options.kv_ops_per_second = spec.kv_ops_per_second;
  Cluster cluster(std::move(options));
  RunResult result = cluster.Run();
  if (cli.json) {
    std::printf("%s\n", result.ToJson().c_str());
  } else {
    std::printf("%s\n", result.Summary().c_str());
  }

  if (cli.trace) {
    std::printf("\ntrace digest: %s (%llu events); last entries:\n%s",
                cluster.trace()->ComputeDigest().ToHex().c_str(),
                static_cast<unsigned long long>(cluster.trace()->total_events()),
                cluster.trace()->DumpTail(15).c_str());
  }
  if (mode == RunMode::kMemoize) {
    if (store.SaveToFile(memo_path)) {
      std::printf("memo DB saved: %zu records -> %s\n", store.size(),
                  memo_path.c_str());
    } else {
      std::fprintf(stderr, "could not save memo DB to %s\n", memo_path.c_str());
      return 1;
    }
  }
  return VerdictExitCode(result);
}

// --repro=FILE: re-execute a ChaosSearch artifact. The replayed run must
// reach the byte-identical InvariantReport the artifact recorded; any
// mismatch is a hard error (1), a reproduced violation exits 4.
int RunRepro(const CliOptions& cli) {
  std::ifstream in(cli.repro);
  if (!in) {
    std::fprintf(stderr, "cannot read repro artifact %s\n", cli.repro.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<ReproReplay> replay = ReplayRepro(text.str());
  if (!replay.ok()) {
    std::fprintf(stderr, "repro artifact rejected: %s\n",
                 replay.status().ToString().c_str());
    return 1;
  }
  const ReproReplay& out = replay.value();
  if (cli.json) {
    std::printf("%s\n", out.result.ToJson().c_str());
  } else {
    std::printf("%s\n", out.result.Summary().c_str());
  }
  if (!out.invariants_match) {
    std::fprintf(stderr,
                 "repro FAILED: replayed invariant report differs from the "
                 "artifact (expected %s)\n",
                 Join(out.expected_violated, ",").c_str());
    return 1;
  }
  if (!cli.json) {
    std::printf("repro OK: reproduced [%s] byte-identically\n",
                Join(out.expected_violated, ",").c_str());
  }
  return VerdictExitCode(out.result);
}

int RunSearch(const BugSpec& spec, const CliOptions& cli) {
  FaultSearchConfig config;
  config.spec = spec;
  config.nodes = cli.nodes;
  config.mode = RunMode::kColocated;
  config.seed = cli.seed;
  config.search_seed = cli.search_seed;
  config.budget = cli.search_budget;
  config.generation_size = std::min(8, cli.search_budget);
  config.jobs = cli.jobs;
  FaultSearchReport report = FaultSearch(config).Run();
  if (cli.json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::printf("search: %zu candidates, baseline flaps %lld\n",
                report.candidates.size(),
                static_cast<long long>(report.baseline_flaps));
    if (report.found_violation) {
      std::printf("violation found: candidate %d violates [%s]\n",
                  report.violating_index, Join(report.violated, ",").c_str());
      std::printf("minimized: %zu event(s) (from %zu) in %d shrink runs\n",
                  report.minimized_plan.events.size(),
                  report.violating_plan.events.size(), report.minimize_runs);
      std::printf("%s\n", report.minimized_plan.Describe().c_str());
    } else {
      std::printf("no invariant violation within budget\n");
    }
  }
  if (report.found_violation && !cli.repro_out.empty()) {
    std::ofstream out(cli.repro_out);
    if (!out) {
      std::fprintf(stderr, "cannot write repro artifact %s\n",
                   cli.repro_out.c_str());
      return 1;
    }
    out << report.repro_json << "\n";
    if (!cli.json) {
      std::printf("repro artifact -> %s\n", cli.repro_out.c_str());
    }
  }
  return report.found_violation ? 4 : 0;
}

// --mode=real: the same Gossiper/ring/KvService translation units that run in
// the simulator, on real localhost TCP sockets and wall-clock timers. No
// BugSpec here — real mode measures the substrate itself, not a catalog
// scenario.
int RunReal(const CliOptions& cli) {
  RealCluster::Options options;
  options.num_nodes = cli.nodes;
  options.node.seed = cli.seed;
  options.node.gossip_interval = VirtualDuration::Millis(cli.gossip_ms);
  options.node.enable_kv = cli.kv_ops > 0;
  if (cli.have_kv_consistency) {
    options.node.kv_consistency = cli.kv_consistency;
  }
  options.node.kv_wal = cli.kv_wal;
  options.node.kv_repair = cli.kv_repair;
  if (cli.kv_repair_rate > 0) {
    options.node.kv_repair_rate_bytes = cli.kv_repair_rate;
  }
  if (cli.kv_repair_max_sessions > 0) {
    options.node.kv_repair_max_sessions = cli.kv_repair_max_sessions;
  }
  options.node.plant_repair_storm = cli.plant_repair_storm;
  options.kv_ops = cli.kv_ops;
  options.convergence_timeout = VirtualDuration::Seconds(cli.real_seconds);
  if (!cli.faults.empty()) {
    // Same named plans as sim mode; RealCluster rescales the schedule to its
    // gossip interval and reports a partition-heals verdict (exit code 4 on
    // a cluster that fails to reconverge).
    options.faults = FaultPlan::ByName(cli.faults, cli.nodes, cli.seed);
  }
  RealCluster cluster(options);
  RunResult result = cluster.Run();
  if (cli.json) {
    std::printf("%s\n", result.ToJson().c_str());
  } else {
    std::printf("%s\n", result.Summary().c_str());
  }
  if (!result.settled) {
    std::fprintf(stderr, "real cluster did not converge within %ds\n",
                 cli.real_seconds);
    return 1;
  }
  return VerdictExitCode(result);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage();
    return 2;
  }
  Result<ModeSelection> parsed = ParseCliMode(cli.mode, cli.sim_modes);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    Usage();
    return 2;
  }
  const ModeSelection sel = parsed.value();
  if (sel.deprecated_alias) {
    std::fprintf(stderr, "warning: --mode=%s is deprecated; use %s\n",
                 cli.mode.c_str(), sel.canonical.c_str());
  }
  // A --repro artifact implies repro mode regardless of --mode (historical
  // behavior); --mode=repro without an artifact is a usage error.
  if (!cli.repro.empty()) {
    return RunRepro(cli);
  }
  if (sel.kind == CliModeKind::kRepro) {
    std::fprintf(stderr, "--mode=repro needs --repro=FILE\n");
    Usage();
    return 2;
  }
  if (sel.kind == CliModeKind::kReal) {
    return RunReal(cli);
  }
  const BugSpec* catalog_spec = BugCatalog::TryGet(cli.bug);
  if (catalog_spec == nullptr) {
    std::fprintf(stderr, "unknown bug id '%s'\n", cli.bug.c_str());
    Usage();
    return 2;
  }
  BugSpec spec = *catalog_spec;
  if (!cli.faults.empty()) {
    spec.fault_plan = cli.faults;
  }
  if (cli.guard_lateness_p99_ms > 0.0) {
    spec.guard.lateness_p99_invalid =
        VirtualDuration::Micros(static_cast<int64_t>(cli.guard_lateness_p99_ms * 1000.0));
    spec.guard.lateness_p99_degraded =
        VirtualDuration::Micros(static_cast<int64_t>(cli.guard_lateness_p99_ms * 500.0));
  }
  if (cli.have_replay_policy) {
    spec.replay_policy = cli.replay_policy;
  }
  if (cli.plant_bug) {
    spec.check.plant_left_join_bug = true;
  }
  if (cli.have_kv_consistency) {
    spec.kv_consistency = cli.kv_consistency;
  }
  if (cli.kv_wal) {
    spec.kv_wal = true;
  }
  if (cli.plant_kv_bug) {
    spec.check.plant_kv_ack_before_sync = true;
  }
  if (cli.kv_repair) {
    spec.kv_repair = true;
  }
  if (cli.kv_repair_rate > 0) {
    spec.kv_repair_rate_bytes = cli.kv_repair_rate;
  }
  if (cli.kv_repair_max_sessions > 0) {
    spec.kv_repair_max_sessions = cli.kv_repair_max_sessions;
  }
  if (cli.plant_repair_storm) {
    spec.check.plant_repair_storm = true;
  }
  if (cli.have_kv_key_dist) {
    spec.kv_key_dist = cli.kv_key_dist;
    spec.kv_zipf_s = cli.kv_zipf_s;
  }
  if (cli.kv_rate > 0.0) {
    spec.kv_ops_per_second = cli.kv_rate;
  }
  if (cli.have_workload) {
    spec.workload = cli.workload;
  }
  if (!cli.json) {
    std::printf("%s: %s\n", spec.id.c_str(), spec.description.c_str());
    if (!spec.fault_plan.empty() && spec.fault_plan != "none") {
      std::printf("faults: %s\n",
                  spec.MakeFaultPlan(cli.nodes, cli.seed).Describe().c_str());
    }
  }

  if (sel.kind == CliModeKind::kSearch) {
    return RunSearch(spec, cli);
  }
  if (sel.IsFullGrid()) {
    ExperimentSpec grid;
    grid.bugs = {spec};
    grid.modes = {RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
                  RunMode::kPilReplay};
    grid.scales = {cli.nodes};
    grid.seeds = {cli.seed};
    grid.jobs = cli.jobs;
    SuiteReport report = ExperimentSuite(grid).Run();
    ScaleCheckResult full = report.Assemble(spec.id, cli.nodes, cli.seed);
    // Any invalid mode taints the whole comparison.
    int exit_code = std::max(
        std::max(VerdictExitCode(full.real), VerdictExitCode(full.colo)),
        std::max(VerdictExitCode(full.memoize), VerdictExitCode(full.replay)));
    if (cli.json) {
      std::printf("%s\n", full.ToJson().c_str());
      return exit_code;
    }
    std::printf("  real:    %s\n", full.real.Summary().c_str());
    std::printf("  colo:    %s\n", full.colo.Summary().c_str());
    std::printf("  memoize: %s\n", full.memoize.Summary().c_str());
    std::printf("  replay:  %s\n", full.replay.Summary().c_str());
    std::printf("PIL flap error vs real: %.0f%%; colo error: %.0f%%\n",
                full.replay_flap_error * 100.0, full.colo_flap_error * 100.0);
    return exit_code;
  }
  // A subset of simulated deployments: run them sequentially in request
  // order; the worst exit code wins so CI gates stay honest.
  int exit_code = 0;
  for (RunMode mode : sel.sim_modes) {
    exit_code = std::max(exit_code, RunOne(spec, cli, mode));
  }
  return exit_code;
}
