// The offending-function finder (Figure 2 steps a-b) as a developer would
// use it: profile the system at laptop scales, get back the list of
// functions that will blow up at deployment scale, with PIL-safety verdicts
// and the workloads needed to reach them.

#include <cstdio>

#include "src/sfind/finder.h"

using namespace scalecheck;

int main() {
  std::printf("=== sfind: which functions will hurt at 256 nodes? ===\n\n");
  std::printf("Profiling the vnode-era system (C3881 configuration) at small "
              "scales {8,12,16,24}...\n\n");

  SfindOptions options;
  options.calc_version = CalcVersion::kV2C3831Fix;
  options.vnodes_per_node = 4;
  options.scales = {8, 12, 16, 24};
  options.target_scale = 256;

  OffendingFunctionFinder finder(options);
  std::vector<OffenderReport> reports = finder.Run();
  std::printf("%s\n",
              OffendingFunctionFinder::RenderReport(reports, options.target_scale)
                  .c_str());

  for (const OffenderReport& r : reports) {
    if (r.TakeThePil()) {
      std::printf("-> '%s' takes the PIL: during replays it will be replaced by\n"
                  "   sleep(t) with memoized output (predicted t at N=256: %.2fs).\n",
                  r.name.c_str(), r.predicted_seconds_at_target);
    }
  }
  std::printf("\nFunctions with side effects (gossip senders, the clock-reading FD\n"
              "sweep) are scale-dependent too, but NOT PIL-safe; they keep running\n"
              "for real during replays — their linear cost is what PIL replay still\n"
              "pays (the 't+e' in Figure 1c).\n");
  return 0;
}
