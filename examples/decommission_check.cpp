// CASSANDRA-3831 walkthrough: why "100-node testing is not enough".
//
// Runs the decommission workload at growing scales in real-scale mode,
// printing per-scale calc durations and flaps — the latent bug is invisible
// until ~256 nodes. Then performs the one-time memoization at the failing
// scale, persists the memo DB to disk, reloads it (as a developer machine
// would between debug iterations), and replays.
//
// Run: ./build/examples/decommission_check [--full]
//      (--full includes the N=256 runs; without it the demo stays <1 min)

#include <cstdio>
#include <cstring>

#include "src/pil/memo_store.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

using namespace scalecheck;

int main(int argc, char** argv) {
  bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  BugSpec bug = BugCatalog::Get("C3831");
  std::printf("=== %s: %s ===\n\n", bug.id.c_str(), bug.description.c_str());
  std::printf("The pending-range calculation is %s — scalable on the design sketch,\n"
              "cubic in the implementation (%s).\n\n",
              CalcVersionName(bug.calc_version),
              MakeCalculator(bug.calc_version)->complexity());

  ScaleCheckRunner runner(bug);
  std::vector<int> scales = full ? std::vector<int>{32, 64, 128, 256}
                                 : std::vector<int>{16, 32, 64, 96};
  std::printf("%-8s %-12s %-14s %-10s\n", "#nodes", "flaps", "calc max", "verdict");
  for (int n : scales) {
    RunResult real = runner.RunReal(n);
    std::printf("%-8d %-12lld %-14s %s\n", n, static_cast<long long>(real.flaps),
                VirtualDuration::FromSecondsF(real.calc_duration_seconds.max())
                    .ToString()
                    .c_str(),
                real.flaps == 0 ? "test PASSES (bug latent!)" : "bug SURFACES");
  }

  int check_scale = full ? 256 : 96;
  std::printf("\nNow the single-machine scale check at N=%d:\n", check_scale);

  // Memoize once (Figure 2-d): colocated, contended, slow — but one-time.
  MemoStore store;
  RunOptions memoize_options;
  memoize_options.memo_store = &store;
  RunResult memoized = RunSingle(bug, check_scale, RunMode::kMemoize,
                                 0x5ca1ec4ecULL, memoize_options);
  std::printf("  memoization run: %s\n", memoized.Summary().c_str());

  // Persist the DB, as the real workflow would between debug sessions.
  const char* path = "/tmp/scalecheck_c3831.memo";
  if (!store.SaveToFile(path)) {
    std::printf("  (could not persist memo DB to %s)\n", path);
    return 1;
  }
  MemoStore reloaded;
  if (!MemoStore::LoadFromFile(path, &reloaded)) {
    std::printf("  (could not reload memo DB)\n");
    return 1;
  }
  std::printf("  memo DB: %zu records, %lld output bytes -> %s\n",
              reloaded.size(), static_cast<long long>(reloaded.output_bytes()), path);

  // Replay (Figure 2-f): fast, accurate, repeatable.
  RunOptions replay_options;
  replay_options.memo_store = &reloaded;
  RunResult replay = RunSingle(bug, check_scale, RunMode::kPilReplay,
                               0x5ca1ec4ecULL, replay_options);
  std::printf("  PIL replay:      %s\n\n", replay.Summary().c_str());

  std::printf("The replay reproduces the real-scale symptom on one machine; the\n"
              "one-time memoization run took %.1fx the replay's virtual time, and\n"
              "every further debug iteration only pays the replay cost.\n",
              memoized.test_duration.seconds() /
                  std::max(1.0, replay.test_duration.seconds()));
  return 0;
}
