file(REMOVE_RECURSE
  "CMakeFiles/tab_calc_durations.dir/tab_calc_durations.cc.o"
  "CMakeFiles/tab_calc_durations.dir/tab_calc_durations.cc.o.d"
  "tab_calc_durations"
  "tab_calc_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_calc_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
