# Empty dependencies file for tab_calc_durations.
# This may be replaced when dependencies are built.
