file(REMOVE_RECURSE
  "CMakeFiles/tab_colocation_limit.dir/tab_colocation_limit.cc.o"
  "CMakeFiles/tab_colocation_limit.dir/tab_colocation_limit.cc.o.d"
  "tab_colocation_limit"
  "tab_colocation_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_colocation_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
