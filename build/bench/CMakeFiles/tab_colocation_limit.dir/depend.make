# Empty dependencies file for tab_colocation_limit.
# This may be replaced when dependencies are built.
