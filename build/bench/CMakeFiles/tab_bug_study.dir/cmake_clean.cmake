file(REMOVE_RECURSE
  "CMakeFiles/tab_bug_study.dir/tab_bug_study.cc.o"
  "CMakeFiles/tab_bug_study.dir/tab_bug_study.cc.o.d"
  "tab_bug_study"
  "tab_bug_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bug_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
