# Empty dependencies file for tab_bug_study.
# This may be replaced when dependencies are built.
