file(REMOVE_RECURSE
  "CMakeFiles/fig3a_c3831.dir/fig3a_c3831.cc.o"
  "CMakeFiles/fig3a_c3831.dir/fig3a_c3831.cc.o.d"
  "fig3a_c3831"
  "fig3a_c3831.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_c3831.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
