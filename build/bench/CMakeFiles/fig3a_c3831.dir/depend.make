# Empty dependencies file for fig3a_c3831.
# This may be replaced when dependencies are built.
