# Empty compiler generated dependencies file for fig3b_c3881.
# This may be replaced when dependencies are built.
