file(REMOVE_RECURSE
  "CMakeFiles/fig3b_c3881.dir/fig3b_c3881.cc.o"
  "CMakeFiles/fig3b_c3881.dir/fig3b_c3881.cc.o.d"
  "fig3b_c3881"
  "fig3b_c3881.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_c3881.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
