# Empty compiler generated dependencies file for fig1_timing.
# This may be replaced when dependencies are built.
