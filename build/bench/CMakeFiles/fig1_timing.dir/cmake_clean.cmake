file(REMOVE_RECURSE
  "CMakeFiles/fig1_timing.dir/fig1_timing.cc.o"
  "CMakeFiles/fig1_timing.dir/fig1_timing.cc.o.d"
  "fig1_timing"
  "fig1_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
