# Empty compiler generated dependencies file for fig3c_c5456.
# This may be replaced when dependencies are built.
