file(REMOVE_RECURSE
  "CMakeFiles/fig3c_c5456.dir/fig3c_c5456.cc.o"
  "CMakeFiles/fig3c_c5456.dir/fig3c_c5456.cc.o.d"
  "fig3c_c5456"
  "fig3c_c5456.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_c5456.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
