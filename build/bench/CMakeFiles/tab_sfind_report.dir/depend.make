# Empty dependencies file for tab_sfind_report.
# This may be replaced when dependencies are built.
