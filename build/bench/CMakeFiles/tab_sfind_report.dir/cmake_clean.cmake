file(REMOVE_RECURSE
  "CMakeFiles/tab_sfind_report.dir/tab_sfind_report.cc.o"
  "CMakeFiles/tab_sfind_report.dir/tab_sfind_report.cc.o.d"
  "tab_sfind_report"
  "tab_sfind_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sfind_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
