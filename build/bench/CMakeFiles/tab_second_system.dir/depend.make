# Empty dependencies file for tab_second_system.
# This may be replaced when dependencies are built.
