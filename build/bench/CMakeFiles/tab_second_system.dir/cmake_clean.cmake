file(REMOVE_RECURSE
  "CMakeFiles/tab_second_system.dir/tab_second_system.cc.o"
  "CMakeFiles/tab_second_system.dir/tab_second_system.cc.o.d"
  "tab_second_system"
  "tab_second_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_second_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
