file(REMOVE_RECURSE
  "CMakeFiles/tab_extrapolation.dir/tab_extrapolation.cc.o"
  "CMakeFiles/tab_extrapolation.dir/tab_extrapolation.cc.o.d"
  "tab_extrapolation"
  "tab_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
