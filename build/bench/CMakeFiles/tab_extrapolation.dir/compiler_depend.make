# Empty compiler generated dependencies file for tab_extrapolation.
# This may be replaced when dependencies are built.
