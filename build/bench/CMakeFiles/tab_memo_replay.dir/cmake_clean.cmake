file(REMOVE_RECURSE
  "CMakeFiles/tab_memo_replay.dir/tab_memo_replay.cc.o"
  "CMakeFiles/tab_memo_replay.dir/tab_memo_replay.cc.o.d"
  "tab_memo_replay"
  "tab_memo_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_memo_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
