# Empty compiler generated dependencies file for tab_memo_replay.
# This may be replaced when dependencies are built.
