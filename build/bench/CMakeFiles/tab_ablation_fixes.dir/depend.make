# Empty dependencies file for tab_ablation_fixes.
# This may be replaced when dependencies are built.
