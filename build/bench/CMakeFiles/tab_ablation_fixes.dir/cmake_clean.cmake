file(REMOVE_RECURSE
  "CMakeFiles/tab_ablation_fixes.dir/tab_ablation_fixes.cc.o"
  "CMakeFiles/tab_ablation_fixes.dir/tab_ablation_fixes.cc.o.d"
  "tab_ablation_fixes"
  "tab_ablation_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ablation_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
