file(REMOVE_RECURSE
  "CMakeFiles/micro_calculators.dir/micro_calculators.cc.o"
  "CMakeFiles/micro_calculators.dir/micro_calculators.cc.o.d"
  "micro_calculators"
  "micro_calculators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_calculators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
