# Empty compiler generated dependencies file for micro_calculators.
# This may be replaced when dependencies are built.
