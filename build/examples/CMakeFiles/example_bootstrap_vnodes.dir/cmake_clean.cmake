file(REMOVE_RECURSE
  "CMakeFiles/example_bootstrap_vnodes.dir/bootstrap_vnodes.cpp.o"
  "CMakeFiles/example_bootstrap_vnodes.dir/bootstrap_vnodes.cpp.o.d"
  "bootstrap_vnodes"
  "bootstrap_vnodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bootstrap_vnodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
