# Empty dependencies file for example_bootstrap_vnodes.
# This may be replaced when dependencies are built.
