file(REMOVE_RECURSE
  "CMakeFiles/example_scalecheck_cli.dir/scalecheck_cli.cpp.o"
  "CMakeFiles/example_scalecheck_cli.dir/scalecheck_cli.cpp.o.d"
  "scalecheck_cli"
  "scalecheck_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scalecheck_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
