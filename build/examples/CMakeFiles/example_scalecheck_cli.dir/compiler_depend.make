# Empty compiler generated dependencies file for example_scalecheck_cli.
# This may be replaced when dependencies are built.
