file(REMOVE_RECURSE
  "CMakeFiles/example_decommission_check.dir/decommission_check.cpp.o"
  "CMakeFiles/example_decommission_check.dir/decommission_check.cpp.o.d"
  "decommission_check"
  "decommission_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_decommission_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
