# Empty compiler generated dependencies file for example_decommission_check.
# This may be replaced when dependencies are built.
