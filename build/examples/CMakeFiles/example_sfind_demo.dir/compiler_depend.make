# Empty compiler generated dependencies file for example_sfind_demo.
# This may be replaced when dependencies are built.
