file(REMOVE_RECURSE
  "CMakeFiles/example_sfind_demo.dir/sfind_demo.cpp.o"
  "CMakeFiles/example_sfind_demo.dir/sfind_demo.cpp.o.d"
  "sfind_demo"
  "sfind_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sfind_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
