# Empty compiler generated dependencies file for example_kvstore_demo.
# This may be replaced when dependencies are built.
