file(REMOVE_RECURSE
  "CMakeFiles/example_kvstore_demo.dir/kvstore_demo.cpp.o"
  "CMakeFiles/example_kvstore_demo.dir/kvstore_demo.cpp.o.d"
  "kvstore_demo"
  "kvstore_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvstore_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
