# Empty dependencies file for scalecheck.
# This may be replaced when dependencies are built.
