
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/scalecheck.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/CMakeFiles/scalecheck.dir/cluster/node.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/cluster/node.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/scalecheck.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/scalecheck.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/logging.cc.o.d"
  "/root/repo/src/common/result.cc" "src/CMakeFiles/scalecheck.dir/common/result.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/result.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/scalecheck.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/scalecheck.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/stats.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/scalecheck.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/common/strings.cc.o.d"
  "/root/repo/src/dfs/dfs.cc" "src/CMakeFiles/scalecheck.dir/dfs/dfs.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/dfs/dfs.cc.o.d"
  "/root/repo/src/gossip/endpoint_state.cc" "src/CMakeFiles/scalecheck.dir/gossip/endpoint_state.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/gossip/endpoint_state.cc.o.d"
  "/root/repo/src/gossip/failure_detector.cc" "src/CMakeFiles/scalecheck.dir/gossip/failure_detector.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/gossip/failure_detector.cc.o.d"
  "/root/repo/src/gossip/flap_counter.cc" "src/CMakeFiles/scalecheck.dir/gossip/flap_counter.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/gossip/flap_counter.cc.o.d"
  "/root/repo/src/gossip/gossiper.cc" "src/CMakeFiles/scalecheck.dir/gossip/gossiper.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/gossip/gossiper.cc.o.d"
  "/root/repo/src/kv/kv_service.cc" "src/CMakeFiles/scalecheck.dir/kv/kv_service.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/kv/kv_service.cc.o.d"
  "/root/repo/src/kv/storage_engine.cc" "src/CMakeFiles/scalecheck.dir/kv/storage_engine.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/kv/storage_engine.cc.o.d"
  "/root/repo/src/pil/boundary.cc" "src/CMakeFiles/scalecheck.dir/pil/boundary.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/pil/boundary.cc.o.d"
  "/root/repo/src/pil/function_registry.cc" "src/CMakeFiles/scalecheck.dir/pil/function_registry.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/pil/function_registry.cc.o.d"
  "/root/repo/src/pil/memo_store.cc" "src/CMakeFiles/scalecheck.dir/pil/memo_store.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/pil/memo_store.cc.o.d"
  "/root/repo/src/pil/order_log.cc" "src/CMakeFiles/scalecheck.dir/pil/order_log.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/pil/order_log.cc.o.d"
  "/root/repo/src/ring/calc_bootstrap.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_bootstrap.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_bootstrap.cc.o.d"
  "/root/repo/src/ring/calc_factory.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_factory.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_factory.cc.o.d"
  "/root/repo/src/ring/calc_reference.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_reference.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_reference.cc.o.d"
  "/root/repo/src/ring/calc_v1.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_v1.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_v1.cc.o.d"
  "/root/repo/src/ring/calc_v2.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_v2.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_v2.cc.o.d"
  "/root/repo/src/ring/calc_v3.cc" "src/CMakeFiles/scalecheck.dir/ring/calc_v3.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/calc_v3.cc.o.d"
  "/root/repo/src/ring/pending_ranges.cc" "src/CMakeFiles/scalecheck.dir/ring/pending_ranges.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/pending_ranges.cc.o.d"
  "/root/repo/src/ring/token_ring.cc" "src/CMakeFiles/scalecheck.dir/ring/token_ring.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/ring/token_ring.cc.o.d"
  "/root/repo/src/scalecheck/scale_check.cc" "src/CMakeFiles/scalecheck.dir/scalecheck/scale_check.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/scalecheck/scale_check.cc.o.d"
  "/root/repo/src/sfind/finder.cc" "src/CMakeFiles/scalecheck.dir/sfind/finder.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sfind/finder.cc.o.d"
  "/root/repo/src/sfind/fitter.cc" "src/CMakeFiles/scalecheck.dir/sfind/fitter.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sfind/fitter.cc.o.d"
  "/root/repo/src/sim/cpu_model.cc" "src/CMakeFiles/scalecheck.dir/sim/cpu_model.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/cpu_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/scalecheck.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/scalecheck.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/memory_model.cc" "src/CMakeFiles/scalecheck.dir/sim/memory_model.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/memory_model.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/scalecheck.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/scalecheck.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/CMakeFiles/scalecheck.dir/sim/sync.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/sync.cc.o.d"
  "/root/repo/src/sim/thread.cc" "src/CMakeFiles/scalecheck.dir/sim/thread.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/thread.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/scalecheck.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/sim/trace.cc.o.d"
  "/root/repo/src/study/bug_database.cc" "src/CMakeFiles/scalecheck.dir/study/bug_database.cc.o" "gcc" "src/CMakeFiles/scalecheck.dir/study/bug_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
