file(REMOVE_RECURSE
  "libscalecheck.a"
)
