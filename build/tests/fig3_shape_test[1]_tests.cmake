add_test([=[Fig3Shape.C3831At128RealQuietColoStormsPilAgrees]=]  /root/repo/build/tests/fig3_shape_test [==[--gtest_filter=Fig3Shape.C3831At128RealQuietColoStormsPilAgrees]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Fig3Shape.C3831At128RealQuietColoStormsPilAgrees]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  fig3_shape_test_TESTS Fig3Shape.C3831At128RealQuietColoStormsPilAgrees)
