# Empty dependencies file for sfind_fitter_test.
# This may be replaced when dependencies are built.
