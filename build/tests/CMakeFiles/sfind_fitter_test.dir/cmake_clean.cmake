file(REMOVE_RECURSE
  "CMakeFiles/sfind_fitter_test.dir/sfind_fitter_test.cc.o"
  "CMakeFiles/sfind_fitter_test.dir/sfind_fitter_test.cc.o.d"
  "sfind_fitter_test"
  "sfind_fitter_test.pdb"
  "sfind_fitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfind_fitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
