# Empty dependencies file for gossip_failure_detector_test.
# This may be replaced when dependencies are built.
