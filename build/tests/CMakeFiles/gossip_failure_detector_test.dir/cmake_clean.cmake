file(REMOVE_RECURSE
  "CMakeFiles/gossip_failure_detector_test.dir/gossip_failure_detector_test.cc.o"
  "CMakeFiles/gossip_failure_detector_test.dir/gossip_failure_detector_test.cc.o.d"
  "gossip_failure_detector_test"
  "gossip_failure_detector_test.pdb"
  "gossip_failure_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_failure_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
