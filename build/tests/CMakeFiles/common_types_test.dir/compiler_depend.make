# Empty compiler generated dependencies file for common_types_test.
# This may be replaced when dependencies are built.
