# Empty compiler generated dependencies file for fig3_shape_test.
# This may be replaced when dependencies are built.
