file(REMOVE_RECURSE
  "CMakeFiles/fig3_shape_test.dir/fig3_shape_test.cc.o"
  "CMakeFiles/fig3_shape_test.dir/fig3_shape_test.cc.o.d"
  "fig3_shape_test"
  "fig3_shape_test.pdb"
  "fig3_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
