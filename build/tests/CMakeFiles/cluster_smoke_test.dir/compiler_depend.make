# Empty compiler generated dependencies file for cluster_smoke_test.
# This may be replaced when dependencies are built.
