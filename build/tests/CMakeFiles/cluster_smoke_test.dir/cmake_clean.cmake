file(REMOVE_RECURSE
  "CMakeFiles/cluster_smoke_test.dir/cluster_smoke_test.cc.o"
  "CMakeFiles/cluster_smoke_test.dir/cluster_smoke_test.cc.o.d"
  "cluster_smoke_test"
  "cluster_smoke_test.pdb"
  "cluster_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
