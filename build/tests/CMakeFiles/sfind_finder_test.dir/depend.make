# Empty dependencies file for sfind_finder_test.
# This may be replaced when dependencies are built.
