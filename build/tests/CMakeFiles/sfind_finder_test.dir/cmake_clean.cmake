file(REMOVE_RECURSE
  "CMakeFiles/sfind_finder_test.dir/sfind_finder_test.cc.o"
  "CMakeFiles/sfind_finder_test.dir/sfind_finder_test.cc.o.d"
  "sfind_finder_test"
  "sfind_finder_test.pdb"
  "sfind_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfind_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
