file(REMOVE_RECURSE
  "CMakeFiles/gossip_flap_counter_test.dir/gossip_flap_counter_test.cc.o"
  "CMakeFiles/gossip_flap_counter_test.dir/gossip_flap_counter_test.cc.o.d"
  "gossip_flap_counter_test"
  "gossip_flap_counter_test.pdb"
  "gossip_flap_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_flap_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
