# Empty dependencies file for gossip_flap_counter_test.
# This may be replaced when dependencies are built.
