# Empty dependencies file for cluster_convergence_property_test.
# This may be replaced when dependencies are built.
