# Empty compiler generated dependencies file for ring_pending_ranges_test.
# This may be replaced when dependencies are built.
