file(REMOVE_RECURSE
  "CMakeFiles/ring_pending_ranges_test.dir/ring_pending_ranges_test.cc.o"
  "CMakeFiles/ring_pending_ranges_test.dir/ring_pending_ranges_test.cc.o.d"
  "ring_pending_ranges_test"
  "ring_pending_ranges_test.pdb"
  "ring_pending_ranges_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_pending_ranges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
