file(REMOVE_RECURSE
  "CMakeFiles/ring_calculators_test.dir/ring_calculators_test.cc.o"
  "CMakeFiles/ring_calculators_test.dir/ring_calculators_test.cc.o.d"
  "ring_calculators_test"
  "ring_calculators_test.pdb"
  "ring_calculators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_calculators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
