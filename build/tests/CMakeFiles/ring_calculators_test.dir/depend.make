# Empty dependencies file for ring_calculators_test.
# This may be replaced when dependencies are built.
