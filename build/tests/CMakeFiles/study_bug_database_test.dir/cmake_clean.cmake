file(REMOVE_RECURSE
  "CMakeFiles/study_bug_database_test.dir/study_bug_database_test.cc.o"
  "CMakeFiles/study_bug_database_test.dir/study_bug_database_test.cc.o.d"
  "study_bug_database_test"
  "study_bug_database_test.pdb"
  "study_bug_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_bug_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
