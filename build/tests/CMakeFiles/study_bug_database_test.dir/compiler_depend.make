# Empty compiler generated dependencies file for study_bug_database_test.
# This may be replaced when dependencies are built.
