# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for study_bug_database_test.
