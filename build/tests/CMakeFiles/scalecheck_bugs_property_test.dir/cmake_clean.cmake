file(REMOVE_RECURSE
  "CMakeFiles/scalecheck_bugs_property_test.dir/scalecheck_bugs_property_test.cc.o"
  "CMakeFiles/scalecheck_bugs_property_test.dir/scalecheck_bugs_property_test.cc.o.d"
  "scalecheck_bugs_property_test"
  "scalecheck_bugs_property_test.pdb"
  "scalecheck_bugs_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalecheck_bugs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
