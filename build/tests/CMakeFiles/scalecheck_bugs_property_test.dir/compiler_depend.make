# Empty compiler generated dependencies file for scalecheck_bugs_property_test.
# This may be replaced when dependencies are built.
