# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scalecheck_bugs_property_test.
