# Empty compiler generated dependencies file for gossip_gossiper_test.
# This may be replaced when dependencies are built.
