file(REMOVE_RECURSE
  "CMakeFiles/gossip_gossiper_test.dir/gossip_gossiper_test.cc.o"
  "CMakeFiles/gossip_gossiper_test.dir/gossip_gossiper_test.cc.o.d"
  "gossip_gossiper_test"
  "gossip_gossiper_test.pdb"
  "gossip_gossiper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_gossiper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
