# Empty dependencies file for sim_thread_expiry_test.
# This may be replaced when dependencies are built.
