file(REMOVE_RECURSE
  "CMakeFiles/kv_storage_engine_test.dir/kv_storage_engine_test.cc.o"
  "CMakeFiles/kv_storage_engine_test.dir/kv_storage_engine_test.cc.o.d"
  "kv_storage_engine_test"
  "kv_storage_engine_test.pdb"
  "kv_storage_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_storage_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
