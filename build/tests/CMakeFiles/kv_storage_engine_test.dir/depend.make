# Empty dependencies file for kv_storage_engine_test.
# This may be replaced when dependencies are built.
