# Empty compiler generated dependencies file for pil_boundary_test.
# This may be replaced when dependencies are built.
