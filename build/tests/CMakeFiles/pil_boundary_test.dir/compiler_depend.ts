# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pil_boundary_test.
