file(REMOVE_RECURSE
  "CMakeFiles/pil_boundary_test.dir/pil_boundary_test.cc.o"
  "CMakeFiles/pil_boundary_test.dir/pil_boundary_test.cc.o.d"
  "pil_boundary_test"
  "pil_boundary_test.pdb"
  "pil_boundary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pil_boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
