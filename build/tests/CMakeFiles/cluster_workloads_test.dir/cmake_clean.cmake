file(REMOVE_RECURSE
  "CMakeFiles/cluster_workloads_test.dir/cluster_workloads_test.cc.o"
  "CMakeFiles/cluster_workloads_test.dir/cluster_workloads_test.cc.o.d"
  "cluster_workloads_test"
  "cluster_workloads_test.pdb"
  "cluster_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
