# Empty dependencies file for cluster_workloads_test.
# This may be replaced when dependencies are built.
