file(REMOVE_RECURSE
  "CMakeFiles/sim_thread_test.dir/sim_thread_test.cc.o"
  "CMakeFiles/sim_thread_test.dir/sim_thread_test.cc.o.d"
  "sim_thread_test"
  "sim_thread_test.pdb"
  "sim_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
