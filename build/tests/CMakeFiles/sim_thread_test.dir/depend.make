# Empty dependencies file for sim_thread_test.
# This may be replaced when dependencies are built.
