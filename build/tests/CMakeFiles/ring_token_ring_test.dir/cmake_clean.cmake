file(REMOVE_RECURSE
  "CMakeFiles/ring_token_ring_test.dir/ring_token_ring_test.cc.o"
  "CMakeFiles/ring_token_ring_test.dir/ring_token_ring_test.cc.o.d"
  "ring_token_ring_test"
  "ring_token_ring_test.pdb"
  "ring_token_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_token_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
