# Empty compiler generated dependencies file for kv_data_space_test.
# This may be replaced when dependencies are built.
