file(REMOVE_RECURSE
  "CMakeFiles/kv_data_space_test.dir/kv_data_space_test.cc.o"
  "CMakeFiles/kv_data_space_test.dir/kv_data_space_test.cc.o.d"
  "kv_data_space_test"
  "kv_data_space_test.pdb"
  "kv_data_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_data_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
