# Empty dependencies file for cluster_node_test.
# This may be replaced when dependencies are built.
