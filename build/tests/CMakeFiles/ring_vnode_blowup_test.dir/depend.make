# Empty dependencies file for ring_vnode_blowup_test.
# This may be replaced when dependencies are built.
