file(REMOVE_RECURSE
  "CMakeFiles/ring_vnode_blowup_test.dir/ring_vnode_blowup_test.cc.o"
  "CMakeFiles/ring_vnode_blowup_test.dir/ring_vnode_blowup_test.cc.o.d"
  "ring_vnode_blowup_test"
  "ring_vnode_blowup_test.pdb"
  "ring_vnode_blowup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_vnode_blowup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
