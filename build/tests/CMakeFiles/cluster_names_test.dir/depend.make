# Empty dependencies file for cluster_names_test.
# This may be replaced when dependencies are built.
