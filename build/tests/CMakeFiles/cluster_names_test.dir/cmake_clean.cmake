file(REMOVE_RECURSE
  "CMakeFiles/cluster_names_test.dir/cluster_names_test.cc.o"
  "CMakeFiles/cluster_names_test.dir/cluster_names_test.cc.o.d"
  "cluster_names_test"
  "cluster_names_test.pdb"
  "cluster_names_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_names_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
