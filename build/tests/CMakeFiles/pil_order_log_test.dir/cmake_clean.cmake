file(REMOVE_RECURSE
  "CMakeFiles/pil_order_log_test.dir/pil_order_log_test.cc.o"
  "CMakeFiles/pil_order_log_test.dir/pil_order_log_test.cc.o.d"
  "pil_order_log_test"
  "pil_order_log_test.pdb"
  "pil_order_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pil_order_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
