# Empty compiler generated dependencies file for pil_order_log_test.
# This may be replaced when dependencies are built.
