# Empty dependencies file for scalecheck_pipeline_test.
# This may be replaced when dependencies are built.
