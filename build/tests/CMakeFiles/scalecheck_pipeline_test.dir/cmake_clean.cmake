file(REMOVE_RECURSE
  "CMakeFiles/scalecheck_pipeline_test.dir/scalecheck_pipeline_test.cc.o"
  "CMakeFiles/scalecheck_pipeline_test.dir/scalecheck_pipeline_test.cc.o.d"
  "scalecheck_pipeline_test"
  "scalecheck_pipeline_test.pdb"
  "scalecheck_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalecheck_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
