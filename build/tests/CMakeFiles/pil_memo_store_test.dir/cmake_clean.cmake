file(REMOVE_RECURSE
  "CMakeFiles/pil_memo_store_test.dir/pil_memo_store_test.cc.o"
  "CMakeFiles/pil_memo_store_test.dir/pil_memo_store_test.cc.o.d"
  "pil_memo_store_test"
  "pil_memo_store_test.pdb"
  "pil_memo_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pil_memo_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
