# Empty compiler generated dependencies file for pil_memo_store_test.
# This may be replaced when dependencies are built.
