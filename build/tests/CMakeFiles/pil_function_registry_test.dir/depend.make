# Empty dependencies file for pil_function_registry_test.
# This may be replaced when dependencies are built.
