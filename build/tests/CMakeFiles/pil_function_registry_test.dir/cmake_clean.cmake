file(REMOVE_RECURSE
  "CMakeFiles/pil_function_registry_test.dir/pil_function_registry_test.cc.o"
  "CMakeFiles/pil_function_registry_test.dir/pil_function_registry_test.cc.o.d"
  "pil_function_registry_test"
  "pil_function_registry_test.pdb"
  "pil_function_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pil_function_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
