# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pil_function_registry_test.
