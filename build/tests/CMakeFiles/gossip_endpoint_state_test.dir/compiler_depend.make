# Empty compiler generated dependencies file for gossip_endpoint_state_test.
# This may be replaced when dependencies are built.
