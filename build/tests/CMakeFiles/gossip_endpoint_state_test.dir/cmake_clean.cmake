file(REMOVE_RECURSE
  "CMakeFiles/gossip_endpoint_state_test.dir/gossip_endpoint_state_test.cc.o"
  "CMakeFiles/gossip_endpoint_state_test.dir/gossip_endpoint_state_test.cc.o.d"
  "gossip_endpoint_state_test"
  "gossip_endpoint_state_test.pdb"
  "gossip_endpoint_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_endpoint_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
