// Exalt-style data-space emulation (§4): identical behaviour, collapsed
// footprint.

#include <gtest/gtest.h>

#include "src/kv/storage_engine.h"

namespace scalecheck {
namespace {

StorageEngine::Config Emulated() {
  StorageEngine::Config cfg;
  cfg.emulate_data_space = true;
  return cfg;
}

TEST(DataSpaceEmulation, SizesSurviveContentDoesNot) {
  StorageEngine engine(Emulated());
  engine.Put(1, std::string(5000, 'z'), 1);
  WorkUnits work = 0;
  auto value = engine.Get(1, &work);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->size(), 5000u);        // size preserved
  EXPECT_EQ((*value)[0], 'x');            // content synthesized
}

TEST(DataSpaceEmulation, CpuCostsIdenticalToRealStorage) {
  // "How data is processed is not affected by the content of the data being
  // written, but only by its size" — the charged work must match exactly.
  StorageEngine real;
  StorageEngine emulated(Emulated());
  std::string value(1234, 'q');
  WorkUnits real_put = real.Put(1, value, 1);
  WorkUnits emu_put = emulated.Put(1, value, 1);
  EXPECT_EQ(real_put, emu_put);
  WorkUnits real_get = 0, emu_get = 0;
  real.Get(1, &real_get);
  emulated.Get(1, &emu_get);
  EXPECT_EQ(real_get, emu_get);
}

TEST(DataSpaceEmulation, FootprintCollapses) {
  StorageEngine real;
  StorageEngine emulated(Emulated());
  for (uint64_t k = 0; k < 100; ++k) {
    std::string value(10000, 'd');
    real.Put(k, value, 1);
    emulated.Put(k, value, 1);
  }
  EXPECT_GT(real.ApproxBytes(), 100 * 10000);
  EXPECT_LT(emulated.ApproxBytes(), real.ApproxBytes() / 50);
}

TEST(DataSpaceEmulation, TimestampsAndOverwritesStillWork) {
  StorageEngine engine(Emulated());
  engine.Put(1, std::string(100, 'a'), 5);
  engine.Put(1, std::string(999, 'b'), 6);  // newer, bigger
  engine.Put(1, std::string(5, 'c'), 2);    // stale, ignored
  WorkUnits work;
  EXPECT_EQ(engine.Get(1, &work)->size(), 999u);
}

TEST(DataSpaceEmulation, SurvivesFlushAndCompaction) {
  StorageEngine::Config cfg = Emulated();
  cfg.memtable_limit = 4;
  cfg.compaction_fanin = 2;
  StorageEngine engine(cfg);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t k = 0; k < 4; ++k) {
      engine.Put(k, std::string(100 * (static_cast<size_t>(round) + 1), 'e'),
                 round + 1);
    }
  }
  WorkUnits work;
  auto value = engine.Get(2, &work);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->size(), 400u);  // newest round's size
}

}  // namespace
}  // namespace scalecheck
