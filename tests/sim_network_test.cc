#include <gtest/gtest.h>

#include <vector>

#include "src/sim/network.h"

namespace scalecheck {
namespace {

struct TestPayload : public Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
  size_t SizeBytes() const override { return 100; }
};

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : sim_(1) {}

  NetworkModel MakeNet(NetworkModel::Config cfg = {}) {
    return NetworkModel(&sim_, cfg, 99);
  }

  Simulator sim_;
};

TEST_F(NetworkFixture, DeliversToRegisteredHandler) {
  NetworkModel net = MakeNet();
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(41));
  sim_.RunUntilIdle();
  EXPECT_EQ(received, std::vector<int>{41});
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_sent(), 100u);
}

TEST_F(NetworkFixture, UnregisteredReceiverDrops) {
  NetworkModel net = MakeNet();
  net.Send(1, 2, 7, std::make_shared<TestPayload>(1));
  sim_.RunUntilIdle();
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST_F(NetworkFixture, UnregisterStopsDelivery) {
  NetworkModel net = MakeNet();
  int received = 0;
  net.RegisterNode(2, [&](const Message&) { ++received; });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(1));
  net.UnregisterNode(2);  // crash before delivery
  sim_.RunUntilIdle();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkFixture, PerPairFifoDespiteJitter) {
  NetworkModel::Config cfg;
  cfg.jitter_mean = VirtualDuration::Millis(50);  // heavy jitter
  NetworkModel net = MakeNet(cfg);
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });
  for (int i = 0; i < 50; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  sim_.RunUntilIdle();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST_F(NetworkFixture, PairSeqCountsPerTypeAndPair) {
  NetworkModel net = MakeNet();
  std::vector<uint64_t> seqs;
  net.RegisterNode(2, [&](const Message& msg) { seqs.push_back(msg.pair_seq); });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  net.Send(1, 2, 8, std::make_shared<TestPayload>(0));  // other type: own counter
  net.Send(3, 2, 7, std::make_shared<TestPayload>(0));  // other pair: own counter
  sim_.RunUntilIdle();
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs[0], 1u);
  EXPECT_EQ(seqs[1], 2u);
  EXPECT_EQ(seqs[2], 1u);
  EXPECT_EQ(seqs[3], 1u);
}

TEST_F(NetworkFixture, LossDropsApproximatelyTheConfiguredFraction) {
  NetworkModel::Config cfg;
  cfg.loss_probability = 0.2;
  NetworkModel net = MakeNet(cfg);
  net.RegisterNode(2, [](const Message&) {});
  for (int i = 0; i < 5000; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  }
  sim_.RunUntilIdle();
  double drop_rate =
      static_cast<double>(net.messages_dropped()) / static_cast<double>(net.messages_sent());
  EXPECT_NEAR(drop_rate, 0.2, 0.03);
}

TEST_F(NetworkFixture, SameMachineUsesLoopbackLatency) {
  NetworkModel::Config cfg;
  cfg.loopback_latency = VirtualDuration::Micros(10);
  cfg.base_latency = VirtualDuration::Millis(10);
  cfg.jitter_mean = VirtualDuration::Nanos(1);
  NetworkModel net = MakeNet(cfg);
  net.set_same_machine_fn([](NodeId a, NodeId b) { return a == 1 && b == 2; });
  std::vector<double> arrival;
  net.RegisterNode(2, [&](const Message&) { arrival.push_back(sim_.Now().seconds()); });
  net.RegisterNode(3, [&](const Message&) { arrival.push_back(sim_.Now().seconds()); });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));  // local
  net.Send(1, 3, 7, std::make_shared<TestPayload>(0));  // remote
  sim_.RunUntilIdle();
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_LT(arrival[0], 1e-4);   // ~10us
  EXPECT_GT(arrival[1], 9e-3);   // ~10ms
}

}  // namespace
}  // namespace scalecheck
