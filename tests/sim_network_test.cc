#include <gtest/gtest.h>

#include <vector>

#include "src/sim/network.h"

namespace scalecheck {
namespace {

struct TestPayload : public Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
  size_t SizeBytes() const override { return 100; }
};

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : sim_(1) {}

  NetworkModel MakeNet(NetworkModel::Config cfg = {}) {
    return NetworkModel(&sim_, cfg, 99);
  }

  Simulator sim_;
};

TEST_F(NetworkFixture, DeliversToRegisteredHandler) {
  NetworkModel net = MakeNet();
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(41));
  sim_.RunUntilIdle();
  EXPECT_EQ(received, std::vector<int>{41});
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_sent(), 100u);
}

TEST_F(NetworkFixture, UnregisteredReceiverDrops) {
  NetworkModel net = MakeNet();
  net.Send(1, 2, 7, std::make_shared<TestPayload>(1));
  sim_.RunUntilIdle();
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST_F(NetworkFixture, UnregisterStopsDelivery) {
  NetworkModel net = MakeNet();
  int received = 0;
  net.RegisterNode(2, [&](const Message&) { ++received; });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(1));
  net.UnregisterNode(2);  // crash before delivery
  sim_.RunUntilIdle();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkFixture, PerPairFifoDespiteJitter) {
  NetworkModel::Config cfg;
  cfg.jitter_mean = VirtualDuration::Millis(50);  // heavy jitter
  NetworkModel net = MakeNet(cfg);
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });
  for (int i = 0; i < 50; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  sim_.RunUntilIdle();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST_F(NetworkFixture, PairSeqCountsPerTypeAndPair) {
  NetworkModel net = MakeNet();
  std::vector<uint64_t> seqs;
  net.RegisterNode(2, [&](const Message& msg) { seqs.push_back(msg.pair_seq); });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  net.Send(1, 2, 8, std::make_shared<TestPayload>(0));  // other type: own counter
  net.Send(3, 2, 7, std::make_shared<TestPayload>(0));  // other pair: own counter
  sim_.RunUntilIdle();
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs[0], 1u);
  EXPECT_EQ(seqs[1], 2u);
  EXPECT_EQ(seqs[2], 1u);
  EXPECT_EQ(seqs[3], 1u);
}

TEST_F(NetworkFixture, LossDropsApproximatelyTheConfiguredFraction) {
  NetworkModel::Config cfg;
  cfg.loss_probability = 0.2;
  NetworkModel net = MakeNet(cfg);
  net.RegisterNode(2, [](const Message&) {});
  for (int i = 0; i < 5000; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  }
  sim_.RunUntilIdle();
  double drop_rate =
      static_cast<double>(net.messages_dropped()) / static_cast<double>(net.messages_sent());
  EXPECT_NEAR(drop_rate, 0.2, 0.03);
}

TEST_F(NetworkFixture, FifoPreservedAcrossLatencySpikeHeal) {
  // A link-degrade fault adds 100ms to in-fault sends. Messages sent right
  // after the heal would beat the delayed ones to the receiver if the
  // monotone per-pair clamp did not hold deliveries back.
  NetworkModel::Config cfg;
  cfg.jitter_mean = VirtualDuration::Millis(5);
  NetworkModel net = MakeNet(cfg);
  NetworkModel::LinkFault fault;
  net.set_link_filter([&fault](NodeId, NodeId) { return fault; });
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });

  fault.extra_latency = VirtualDuration::Millis(100);
  for (int i = 0; i < 20; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  fault.extra_latency = VirtualDuration::Zero();  // heal
  for (int i = 20; i < 40; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  sim_.RunUntilIdle();
  ASSERT_EQ(received.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST_F(NetworkFixture, FifoPreservedAcrossPartitionToggle) {
  NetworkModel::Config cfg;
  cfg.jitter_mean = VirtualDuration::Millis(20);
  NetworkModel net = MakeNet(cfg);
  NetworkModel::LinkFault fault;
  net.set_link_filter([&fault](NodeId, NodeId) { return fault; });
  std::vector<int> received;
  net.RegisterNode(2, [&](const Message& msg) {
    received.push_back(std::static_pointer_cast<const TestPayload>(msg.payload)->value);
  });

  for (int i = 0; i < 10; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  fault.blocked = true;  // hard partition: sends are dropped, not delayed
  for (int i = 10; i < 20; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  fault.blocked = false;  // heal
  for (int i = 20; i < 30; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
  }
  sim_.RunUntilIdle();
  EXPECT_EQ(net.messages_blocked(), 10u);
  ASSERT_EQ(received.size(), 20u);
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  for (int i = 20; i < 30; ++i) expected.push_back(i);
  EXPECT_EQ(received, expected);
}

TEST_F(NetworkFixture, BlockedSendConsumesNoRandomness) {
  // Partition drops are deterministic: a blocked Send must not advance the
  // RNG, so the post-heal message stream is byte-identical to a run where
  // the blocked sends never happened.
  auto run = [this](int blocked_sends) {
    NetworkModel::Config cfg;
    cfg.jitter_mean = VirtualDuration::Millis(10);
    NetworkModel net = MakeNet(cfg);
    NetworkModel::LinkFault fault;
    net.set_link_filter([&fault](NodeId, NodeId) { return fault; });
    VirtualTime start = sim_.Now();  // the fixture sim advances across runs
    std::vector<double> arrivals;
    net.RegisterNode(2, [&, start](const Message&) {
      arrivals.push_back((sim_.Now() - start).seconds());
    });
    fault.blocked = true;
    for (int i = 0; i < blocked_sends; ++i) {
      net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
    }
    fault.blocked = false;
    for (int i = 0; i < 10; ++i) {
      net.Send(1, 2, 7, std::make_shared<TestPayload>(i));
    }
    sim_.RunUntilIdle();
    return arrivals;
  };
  std::vector<double> with_blocked = run(25);
  std::vector<double> without_blocked = run(0);
  EXPECT_EQ(with_blocked, without_blocked);
}

TEST_F(NetworkFixture, ExtraLossAddsToConfiguredLoss) {
  NetworkModel::Config cfg;
  cfg.loss_probability = 0.1;
  NetworkModel net = MakeNet(cfg);
  NetworkModel::LinkFault fault;
  fault.extra_loss = 0.15;
  net.set_link_filter([&fault](NodeId, NodeId) { return fault; });
  net.RegisterNode(2, [](const Message&) {});
  for (int i = 0; i < 5000; ++i) {
    net.Send(1, 2, 7, std::make_shared<TestPayload>(0));
  }
  sim_.RunUntilIdle();
  double drop_rate =
      static_cast<double>(net.messages_dropped()) / static_cast<double>(net.messages_sent());
  EXPECT_NEAR(drop_rate, 0.25, 0.03);
  EXPECT_EQ(net.messages_blocked(), 0u);  // probabilistic loss is not "blocked"
}

TEST_F(NetworkFixture, SameMachineUsesLoopbackLatency) {
  NetworkModel::Config cfg;
  cfg.loopback_latency = VirtualDuration::Micros(10);
  cfg.base_latency = VirtualDuration::Millis(10);
  cfg.jitter_mean = VirtualDuration::Nanos(1);
  NetworkModel net = MakeNet(cfg);
  net.set_same_machine_fn([](NodeId a, NodeId b) { return a == 1 && b == 2; });
  std::vector<double> arrival;
  net.RegisterNode(2, [&](const Message&) { arrival.push_back(sim_.Now().seconds()); });
  net.RegisterNode(3, [&](const Message&) { arrival.push_back(sim_.Now().seconds()); });
  net.Send(1, 2, 7, std::make_shared<TestPayload>(0));  // local
  net.Send(1, 3, 7, std::make_shared<TestPayload>(0));  // remote
  sim_.RunUntilIdle();
  ASSERT_EQ(arrival.size(), 2u);
  EXPECT_LT(arrival[0], 1e-4);   // ~10us
  EXPECT_GT(arrival[1], 9e-3);   // ~10ms
}

}  // namespace
}  // namespace scalecheck
