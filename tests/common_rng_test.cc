#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"

namespace scalecheck {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.1);
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream must differ from the parent's subsequent stream.
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != child.Next()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, PickIndexWithinBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.PickIndex(13), 13u);
  }
}

TEST(SplitMix64Fn, Deterministic) {
  uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace scalecheck
