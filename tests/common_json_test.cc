// The strict JSON parser (read-side of JsonWriter).

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/strings.h"

namespace scalecheck {
namespace {

TEST(JsonParseTest, ObjectWithEveryKind) {
  Result<JsonValue> r = ParseJson(
      "{\"i\":42,\"d\":1.5,\"s\":\"hi\",\"b\":true,\"n\":null,"
      "\"a\":[1,2,3],\"o\":{\"x\":-7}}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = r.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("i")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.Find("d")->AsDouble(), 1.5);
  EXPECT_EQ(v.Find("s")->AsString(), "hi");
  EXPECT_TRUE(v.Find("b")->AsBool());
  EXPECT_TRUE(v.Find("n")->is_null());
  ASSERT_EQ(v.Find("a")->AsArray().size(), 3u);
  EXPECT_EQ(v.Find("a")->AsArray()[2].AsInt(), 3);
  EXPECT_EQ(v.Find("o")->Find("x")->AsInt(), -7);
}

TEST(JsonParseTest, ObjectsPreserveInsertionOrder) {
  Result<JsonValue> r = ParseJson("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_TRUE(r.ok());
  const auto& members = r.value().AsObject();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParseTest, Int64PreservedExactly) {
  Result<JsonValue> r = ParseJson("[9223372036854775807,-9223372036854775808]");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().AsArray()[0].is_int());
  EXPECT_EQ(r.value().AsArray()[0].AsInt(), INT64_MAX);
  ASSERT_TRUE(r.value().AsArray()[1].is_int());
  EXPECT_EQ(r.value().AsArray()[1].AsInt(), INT64_MIN);
}

TEST(JsonParseTest, FractionalAndExponentAreNotInt) {
  Result<JsonValue> r = ParseJson("[1.0,1e3]");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().AsArray()[0].is_int());
  EXPECT_FALSE(r.value().AsArray()[1].is_int());
  EXPECT_DOUBLE_EQ(r.value().AsArray()[1].AsDouble(), 1000.0);
}

TEST(JsonParseTest, EscapesDecoded) {
  Result<JsonValue> r = ParseJson(R"(["\"\\\/\b\f\n\r\t","A","😀"])");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().AsArray()[0].AsString(), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(r.value().AsArray()[1].AsString(), "A");
  EXPECT_EQ(r.value().AsArray()[2].AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} x").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(JsonParseTest, RejectsDuplicateKeys) {
  Result<JsonValue> r = ParseJson("{\"k\":1,\"k\":2}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonParseTest, TruncatedInputIsTruncatedStatus) {
  for (const char* text : {"{\"k\":", "[1,", "\"abc", "{", "tru"}) {
    Result<JsonValue> r = ParseJson(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kTruncated) << text;
  }
}

TEST(JsonParseTest, RejectsMalformed) {
  for (const char* text :
       {"", "{k:1}", "[1 2]", "{\"k\" 1}", "nul", "[01]", "+1", "\"\x01\"",
        "[1,]", "{\"k\":1,}", "NaN", "Infinity"}) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  // 32 levels is fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonParseTest, TypedGettersReportErrors) {
  Result<JsonValue> r = ParseJson("{\"i\":1,\"s\":\"x\",\"d\":1.5}");
  ASSERT_TRUE(r.ok());
  const JsonValue& v = r.value();
  EXPECT_EQ(v.GetInt("i", "t").value(), 1);
  EXPECT_EQ(v.GetString("s", "t").value(), "x");
  EXPECT_DOUBLE_EQ(v.GetDouble("d", "t").value(), 1.5);
  // Ints read as doubles too; doubles do not read as ints.
  EXPECT_DOUBLE_EQ(v.GetDouble("i", "t").value(), 1.0);
  EXPECT_FALSE(v.GetInt("d", "t").ok());
  EXPECT_FALSE(v.GetInt("missing", "t").ok());
  EXPECT_FALSE(v.GetString("i", "t").ok());
  EXPECT_FALSE(v.GetBool("s", "t").ok());
}

TEST(JsonParseTest, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "x\"y\\z");
  w.Field("count", int64_t{-123});
  w.Field("big", uint64_t{1} << 62);
  w.Field("ratio", 0.1);
  w.Field("on", true);
  w.Key("items").BeginArray().Int(1).Int(2).EndArray();
  w.EndObject();
  Result<JsonValue> r = ParseJson(w.str());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Find("name")->AsString(), "x\"y\\z");
  EXPECT_EQ(r.value().Find("count")->AsInt(), -123);
  EXPECT_EQ(r.value().Find("big")->AsInt(), int64_t{1} << 62);
  EXPECT_DOUBLE_EQ(r.value().Find("ratio")->AsDouble(), 0.1);
}

}  // namespace
}  // namespace scalecheck
