#include <gtest/gtest.h>

#include <cmath>

#include "src/sfind/fitter.h"

namespace scalecheck {
namespace {

std::vector<std::pair<double, double>> PowerLawPoints(double c, double k) {
  std::vector<std::pair<double, double>> points;
  for (double n : {8.0, 16.0, 32.0, 64.0}) {
    points.emplace_back(n, c * std::pow(n, k));
  }
  return points;
}

TEST(FitPowerLawTest, RecoversExactExponents) {
  for (double k : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    ComplexityFit fit = FitPowerLaw(PowerLawPoints(5.0, k));
    EXPECT_NEAR(fit.exponent, k, 1e-9) << "k=" << k;
    EXPECT_NEAR(fit.coefficient, 5.0, 1e-6);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
    EXPECT_EQ(fit.num_points, 4);
  }
}

TEST(FitPowerLawTest, ToleratesNoise) {
  auto points = PowerLawPoints(2.0, 3.0);
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].second *= (i % 2 == 0) ? 1.15 : 0.87;
  }
  ComplexityFit fit = FitPowerLaw(points);
  EXPECT_NEAR(fit.exponent, 3.0, 0.25);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitPowerLawTest, ClassificationThresholds) {
  EXPECT_TRUE(FitPowerLaw(PowerLawPoints(1, 3.0)).IsSuperlinear());
  EXPECT_TRUE(FitPowerLaw(PowerLawPoints(1, 1.6)).IsSuperlinear());
  EXPECT_TRUE(FitPowerLaw(PowerLawPoints(1, 1.0)).IsLinearScaleDependent());
  EXPECT_TRUE(FitPowerLaw(PowerLawPoints(1, 0.0)).IsScaleIndependent());
}

TEST(FitPowerLawTest, DegenerateInputs) {
  EXPECT_EQ(FitPowerLaw({}).num_points, 0);
  EXPECT_EQ(FitPowerLaw({{8, 100}}).num_points, 1);
  EXPECT_DOUBLE_EQ(FitPowerLaw({{8, 100}}).exponent, 0.0);
  // Identical scales carry no slope information.
  ComplexityFit same = FitPowerLaw({{8, 100}, {8, 200}});
  EXPECT_DOUBLE_EQ(same.exponent, 0.0);
  // Non-positive points are dropped.
  ComplexityFit filtered = FitPowerLaw({{8, 0}, {16, 100}, {32, 400}});
  EXPECT_EQ(filtered.num_points, 2);
  EXPECT_NEAR(filtered.exponent, 2.0, 1e-9);
}

TEST(PredictOpsTest, ExtrapolatesFit) {
  ComplexityFit fit = FitPowerLaw(PowerLawPoints(2.0, 2.0));
  EXPECT_NEAR(PredictOps(fit, 100), 2.0 * 100 * 100, 1e-3);
}

TEST(ComplexityFitTest, DescribeMentionsExponent) {
  ComplexityFit fit = FitPowerLaw(PowerLawPoints(1.0, 2.0));
  EXPECT_NE(fit.Describe().find("n^2.00"), std::string::npos);
}

}  // namespace
}  // namespace scalecheck
