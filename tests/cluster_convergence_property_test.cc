// Property sweep: gossip convergence from scratch must hold across cluster
// sizes and message-loss rates — the anti-entropy protocol's job.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"

namespace scalecheck {
namespace {

struct ConvergenceCase {
  int nodes;
  double loss;
  uint64_t seed;
};

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(ConvergenceTest, FreshBootstrapConverges) {
  const ConvergenceCase& c = GetParam();
  ClusterConfig config;
  config.initial_nodes = c.nodes;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.run_mode = RunMode::kRealScale;
  config.seed = c.seed;

  WorkloadSpec wl;
  wl.kind = WorkloadKind::kBootstrapFresh;
  wl.horizon = VirtualDuration::Seconds(300);

  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  options.network.loss_probability = c.loss;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();

  ASSERT_TRUE(r.settled) << r.Summary();
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    Node* node = cluster.node(static_cast<NodeId>(i));
    EXPECT_EQ(node->gossiper().endpoints().size(), cluster.total_nodes())
        << "node " << i << " endpoint map incomplete";
    EXPECT_EQ(node->ring().num_nodes(), cluster.total_nodes())
        << "node " << i << " ring incomplete";
    // All rings must agree exactly.
    EXPECT_EQ(node->ring().ComputeDigest(), cluster.node(0)->ring().ComputeDigest())
        << "node " << i << " ring diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvergenceTest,
    ::testing::Values(ConvergenceCase{6, 0.0, 1}, ConvergenceCase{12, 0.0, 2},
                      ConvergenceCase{20, 0.0, 3}, ConvergenceCase{12, 0.05, 4},
                      ConvergenceCase{12, 0.15, 5}, ConvergenceCase{8, 0.25, 6}));

}  // namespace
}  // namespace scalecheck
