// The scale-check pipeline invariants (Figure 2) at test-friendly scales.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

TEST(BugSpecTest, CatalogIsConsistent) {
  for (const BugSpec& spec :
       {BugCatalog::Get("C3831"), BugCatalog::Get("C3831-fixed"), BugCatalog::Get("C3881"), BugCatalog::Get("C5456"), BugCatalog::Get("C5456-fixed"),
        BugCatalog::Get("C6127")}) {
    EXPECT_FALSE(spec.id.empty());
    EXPECT_FALSE(spec.description.empty());
    ClusterConfig cfg = spec.MakeConfig(32, RunMode::kColocated, 1);
    EXPECT_EQ(cfg.initial_nodes, 32);
    EXPECT_EQ(cfg.run_mode, RunMode::kColocated);
    EXPECT_EQ(cfg.calc_version, spec.calc_version);
    WorkloadSpec wl = spec.MakeWorkload(32);
    EXPECT_EQ(wl.kind, spec.workload);
  }
  EXPECT_EQ(BugCatalog::Get("C3881").MakeWorkload(64).joining_nodes, 16);  // +25%
}

TEST(RelativeFlapErrorTest, Definition) {
  EXPECT_DOUBLE_EQ(RelativeFlapError(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeFlapError(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(RelativeFlapError(150, 100), 0.5);
  EXPECT_DOUBLE_EQ(RelativeFlapError(50, 100), 0.5);
  EXPECT_DOUBLE_EQ(RelativeFlapError(5, 0), 5.0);  // reference clamped to 1
}

TEST(PipelineTest, MemoizeRunBehavesLikeColo) {
  // Recording must not perturb behaviour: the memoization run IS the basic
  // colocation run plus recording.
  BugSpec spec = BugCatalog::Get("C3831");
  ScaleCheckRunner runner(spec, 7);
  RunResult colo = runner.RunColo(12);
  MemoStore store;
  RunOptions options;
  options.memo_store = &store;
  RunResult memoize = RunSingle(spec, 12, RunMode::kMemoize, 7, options);
  EXPECT_EQ(memoize.flaps, colo.flaps);
  EXPECT_EQ(memoize.messages_sent, colo.messages_sent);
  EXPECT_EQ(memoize.test_duration.nanos(), colo.test_duration.nanos());
  EXPECT_GT(store.size(), 0u);
}

TEST(PipelineTest, ReplayTimingMatchesRealAtQuietScales) {
  // At scales where nothing flaps, PIL replay must track the real-scale run
  // closely in duration and calc count.
  BugSpec spec = BugCatalog::Get("C3831");
  ScaleCheckRunner runner(spec, 7);
  ScaleCheckResult full = runner.RunFull(12);
  EXPECT_EQ(full.real.flaps, 0);
  EXPECT_EQ(full.replay.flaps, 0);
  EXPECT_TRUE(full.replay.settled);
  double ratio = full.replay.test_duration.seconds() / full.real.test_duration.seconds();
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(PipelineTest, ReplayUsesZeroCpuForCalcs) {
  BugSpec spec = BugCatalog::Get("C3831");
  ScaleCheckRunner runner(spec, 7);
  ScaleCheckResult full = runner.RunFull(12);
  // All pending-range invocations served from the DB or fallback sleeps.
  EXPECT_EQ(full.replay.pil.direct_runs, 0u);
  EXPECT_EQ(full.replay.pil.memoized_runs, 0u);
  EXPECT_GT(full.replay.pil.replay_hits, 0u);
  // CPU utilization far below the memoize run's.
  EXPECT_LT(full.replay.max_cpu_utilization, full.memoize.max_cpu_utilization);
}

TEST(PipelineTest, MemoRecordsAreDeterministicallyKeyed) {
  // Two memoization runs with the same seed produce identical stores.
  BugSpec spec = BugCatalog::Get("C3831");
  MemoStore a, b;
  RunSingle(spec, 10, RunMode::kMemoize, 5, RunOptions{.memo_store = &a});
  RunSingle(spec, 10, RunMode::kMemoize, 5, RunOptions{.memo_store = &b});
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Serialize().size(), b.Serialize().size());
  EXPECT_EQ(a.stats().determinism_violations, 0u);
  EXPECT_EQ(b.stats().determinism_violations, 0u);
}

TEST(PipelineTest, ReplayFromPersistedStoreWorks) {
  BugSpec spec = BugCatalog::Get("C3831");
  MemoStore store;
  RunSingle(spec, 10, RunMode::kMemoize, 5, RunOptions{.memo_store = &store});
  std::vector<uint8_t> bytes = store.Serialize();
  MemoStore reloaded;
  ASSERT_TRUE(MemoStore::Deserialize(bytes, &reloaded));
  RunResult replay =
      RunSingle(spec, 10, RunMode::kPilReplay, 5, RunOptions{.memo_store = &reloaded});
  EXPECT_TRUE(replay.settled);
  EXPECT_GT(replay.pil.replay_hits, 0u);
}

TEST(PipelineTest, OrderEnforcedReplayStillSettles) {
  BugSpec spec = BugCatalog::Get("C3831");
  ScaleCheckRunner runner(spec, 7);
  runner.set_enforce_order(true);
  ScaleCheckResult full = runner.RunFull(10);
  EXPECT_TRUE(full.replay.settled) << full.replay.Summary();
  EXPECT_GT(full.replay.order_enforced, 0u);
}

TEST(PipelineTest, FixedSpecsProduceNoSymptom) {
  // Ablation: the patched configurations stay quiet where the buggy ones
  // would flap (here both are quiet at 12 nodes; the bench shows 256).
  ScaleCheckRunner fixed_runner(BugCatalog::Get("C5456-fixed"), 7);
  RunResult fixed = fixed_runner.RunReal(12);
  EXPECT_EQ(fixed.flaps, 0);
  EXPECT_TRUE(fixed.settled);
  // The clone placement holds the lock far shorter than the coarse one.
  ScaleCheckRunner coarse_runner(BugCatalog::Get("C5456"), 7);
  RunResult coarse = coarse_runner.RunReal(12);
  EXPECT_LT(fixed.calc_lock_hold_seconds.max(),
            coarse.calc_lock_hold_seconds.max());
}

TEST(PipelineTest, BootstrapSpecExercisesFreshPath) {
  RunResult r = RunSingle(BugCatalog::Get("C6127"), 10, RunMode::kRealScale, 7);
  EXPECT_TRUE(r.settled);
  EXPECT_GT(r.calc_invocations, 0);
}

}  // namespace
}  // namespace scalecheck
