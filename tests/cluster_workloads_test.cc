// Workload-level integration tests: every protocol the paper lists (§3)
// must run, settle, and leave consistent cluster state.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

Cluster::Options SmallCluster(WorkloadKind kind, int n = 12) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV2C3831Fix;
  config.run_mode = RunMode::kRealScale;
  config.seed = 2024;
  WorkloadSpec wl;
  wl.kind = kind;
  wl.target = n / 2;
  wl.joining_nodes = kind == WorkloadKind::kScaleOut ? 3 : 0;
  if (kind == WorkloadKind::kRebalance) {
    wl.joining_nodes = 1;
  }
  wl.horizon = VirtualDuration::Seconds(300);
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

TEST(WorkloadTest, DecommissionRemovesTargetFromAllRings) {
  Cluster cluster(SmallCluster(WorkloadKind::kDecommission));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled) << r.Summary();
  NodeId target = 6;
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    Node* node = cluster.node(static_cast<NodeId>(i));
    if (node->id() == target) {
      continue;
    }
    EXPECT_FALSE(node->ring().HasNode(target)) << "node " << i;
    EXPECT_TRUE(node->pending_changes().empty()) << "node " << i;
    // The departed node must not be producing flap noise.
    EXPECT_FALSE(node->gossiper().IsAlive(target));
  }
}

TEST(WorkloadTest, ScaleOutAddsJoinersEverywhere) {
  Cluster cluster(SmallCluster(WorkloadKind::kScaleOut));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled) << r.Summary();
  EXPECT_EQ(cluster.total_nodes(), 15u);
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    Node* node = cluster.node(static_cast<NodeId>(i));
    for (NodeId joiner = 12; joiner < 15; ++joiner) {
      EXPECT_TRUE(node->ring().HasNode(joiner))
          << "node " << i << " missing joiner " << joiner;
    }
    EXPECT_EQ(node->ring().num_nodes(), 15u) << "node " << i;
  }
}

TEST(WorkloadTest, FreshBootstrapConvergesFromNothing) {
  Cluster cluster(SmallCluster(WorkloadKind::kBootstrapFresh));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled) << r.Summary();
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    Node* node = cluster.node(static_cast<NodeId>(i));
    EXPECT_EQ(node->ring().num_nodes(), cluster.total_nodes()) << "node " << i;
    EXPECT_EQ(node->my_status(), StatusKind::kNormal);
  }
}

TEST(WorkloadTest, FailoverConvictsTheCrashedNodeEverywhere) {
  Cluster cluster(SmallCluster(WorkloadKind::kFailover));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled) << r.Summary();
  EXPECT_EQ(r.crashed_nodes, 1);
  NodeId target = 6;
  // Every survivor convicted the dead node => at least N-1 flaps.
  EXPECT_GE(r.flaps, static_cast<int64_t>(cluster.total_nodes()) - 1);
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    if (static_cast<NodeId>(i) == target) {
      continue;
    }
    EXPECT_FALSE(cluster.node(static_cast<NodeId>(i))->gossiper().IsAlive(target));
  }
}

TEST(WorkloadTest, RebalanceReplacesNode) {
  Cluster cluster(SmallCluster(WorkloadKind::kRebalance));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled) << r.Summary();
  NodeId target = 6;
  NodeId replacement = 12;
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    Node* node = cluster.node(static_cast<NodeId>(i));
    if (node->id() == target) {
      continue;
    }
    EXPECT_FALSE(node->ring().HasNode(target)) << "node " << i;
    EXPECT_TRUE(node->ring().HasNode(replacement)) << "node " << i;
  }
}

TEST(WorkloadTest, SteadyStateIsQuiet) {
  Cluster::Options options = SmallCluster(WorkloadKind::kSteadyState);
  options.workload.horizon = VirtualDuration::Seconds(120);
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_EQ(r.flaps, 0);
  EXPECT_EQ(r.calc_invocations, 0);  // no membership changes, no recalcs
  EXPECT_GT(r.messages_delivered, 100u);
}

TEST(WorkloadTest, MessageLossToleratedByGossip) {
  Cluster::Options options = SmallCluster(WorkloadKind::kScaleOut);
  options.network.loss_probability = 0.05;  // 5% drops
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_TRUE(r.settled) << r.Summary();  // anti-entropy still converges
}

TEST(WorkloadTest, CrashDuringDecommissionDoesNotWedgeTheRun) {
  Cluster::Options options = SmallCluster(WorkloadKind::kDecommission);
  Cluster cluster(std::move(options));
  // Kill a bystander mid-protocol.
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(30),
                              [&cluster] { cluster.node(2)->Crash(); });
  RunResult r = cluster.Run();
  // The run completes and the crashed node is convicted by survivors.
  EXPECT_GE(r.flaps, 1);
  EXPECT_TRUE(cluster.node(2)->crashed());
}

}  // namespace
}  // namespace scalecheck
