// ExperimentSuite: the declarative grid + host-parallel executor. The core
// contract under test is determinism — jobs=N must be byte-identical to
// jobs=1 — plus the memoize->replay DAG edge and the synchronized
// CalcOutputCache it leans on.

#include "src/scalecheck/experiment_suite.h"

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/node.h"
#include "src/common/thread_pool.h"
#include "src/scalecheck/bug_catalog.h"

namespace scalecheck {
namespace {

ExperimentSpec SmallGrid(int jobs) {
  ExperimentSpec spec;
  spec.bugs = {BugCatalog::Get("C3831")};
  spec.modes = {RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
                RunMode::kPilReplay};
  spec.scales = {10, 12};
  spec.jobs = jobs;
  return spec;
}

TEST(ExperimentSuiteTest, ParallelExecutionIsByteIdenticalToSerial) {
  SuiteReport serial = ExperimentSuite(SmallGrid(1)).Run();
  SuiteReport parallel = ExperimentSuite(SmallGrid(4)).Run();
  std::string serial_json = serial.ToJson();
  EXPECT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, parallel.ToJson());
}

TEST(ExperimentSuiteTest, SharedCacheDoesNotChangeResults) {
  ExperimentSpec cached = SmallGrid(4);
  ExperimentSpec uncached = SmallGrid(4);
  uncached.share_output_cache = false;
  EXPECT_EQ(ExperimentSuite(cached).Run().ToJson(),
            ExperimentSuite(uncached).Run().ToJson());
}

TEST(ExperimentSuiteTest, MatchesScaleCheckRunner) {
  // The declarative path and the classic imperative runner agree run for run.
  const BugSpec& bug = BugCatalog::Get("C3831");
  SuiteReport report = ExperimentSuite(SmallGrid(4)).Run();
  ScaleCheckResult suite = report.Assemble(bug.id, 12, kDefaultSuiteSeed);
  ScaleCheckRunner runner(bug);
  ScaleCheckResult classic = runner.RunFull(12);
  EXPECT_EQ(suite.real.flaps, classic.real.flaps);
  EXPECT_EQ(suite.real.events_executed, classic.real.events_executed);
  EXPECT_EQ(suite.colo.test_duration.nanos(), classic.colo.test_duration.nanos());
  EXPECT_EQ(suite.memoize.events_executed, classic.memoize.events_executed);
  EXPECT_EQ(suite.replay.flaps, classic.replay.flaps);
  EXPECT_EQ(suite.memo.records, classic.memo.records);
}

TEST(ExperimentSuiteTest, RecordsFollowCanonicalGridOrder) {
  ExperimentSpec spec = SmallGrid(4);
  SuiteReport report = ExperimentSuite(spec).Run();
  ASSERT_EQ(report.runs().size(), 8u);  // 1 bug x 2 scales x 4 modes
  size_t i = 0;
  for (int n : spec.scales) {
    for (RunMode mode : spec.modes) {
      EXPECT_EQ(report.runs()[i].nodes, n);
      EXPECT_EQ(report.runs()[i].mode, mode);
      EXPECT_FALSE(report.runs()[i].implicit);
      ++i;
    }
  }
}

TEST(ExperimentSuiteTest, ReplayWaitsForImplicitMemoizeRun) {
  // A replay-only grid: the suite must insert the memoization dependency
  // itself and sequence it before the replay, whatever the worker count.
  ExperimentSpec spec;
  spec.bugs = {BugCatalog::Get("C3831")};
  spec.modes = {RunMode::kPilReplay};
  spec.scales = {10};
  spec.jobs = 4;
  SuiteReport report = ExperimentSuite(spec).Run();

  ASSERT_EQ(report.runs().size(), 2u);
  EXPECT_EQ(report.runs()[0].mode, RunMode::kPilReplay);
  EXPECT_FALSE(report.runs()[0].implicit);
  EXPECT_EQ(report.runs()[1].mode, RunMode::kMemoize);
  EXPECT_TRUE(report.runs()[1].implicit);

  // The replay actually ran against a filled store: DB hits, no direct runs.
  const RunResult& replay =
      report.Get("C3831", RunMode::kPilReplay, 10, kDefaultSuiteSeed);
  EXPECT_GT(replay.pil.replay_hits, 0u);
  EXPECT_EQ(replay.pil.direct_runs, 0u);
  EXPECT_TRUE(replay.settled);
}

TEST(ExperimentSuiteTest, MultiSeedGridKeepsSeedsApart) {
  ExperimentSpec spec;
  spec.bugs = {BugCatalog::Get("C3831")};
  spec.modes = {RunMode::kRealScale};
  spec.scales = {10};
  spec.seeds = {1, 2};
  spec.jobs = 2;
  SuiteReport report = ExperimentSuite(spec).Run();
  const RunResult& a = report.Get("C3831", RunMode::kRealScale, 10, 1);
  const RunResult& b = report.Get("C3831", RunMode::kRealScale, 10, 2);
  // Different seeds, different executions; identical serialized results would
  // mean the seed was ignored.
  EXPECT_NE(a.ToJson(), b.ToJson());
  EXPECT_EQ(report.Find("C3831", RunMode::kRealScale, 10, 3), nullptr);
}

TEST(CalcOutputCacheTest, ConcurrentHammeringStaysConsistent) {
  // Many threads racing Find/Put on overlapping keys: first put wins, every
  // later Find sees a pointer to the winning entry, nothing is lost.
  CalcOutputCache cache;
  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&cache, &mismatches, t] {
        for (int k = 0; k < kKeys; ++k) {
          DigestValue digest{static_cast<uint64_t>(k), 0xfeedULL};
          CalcOutputCache::Entry entry;
          // Every thread writes the same value for a key — the cache contract
          // (entries are pure functions of the key) the suite relies on.
          entry.ops = k;
          entry.output = {static_cast<uint8_t>(k)};
          cache.Put(CalcVersion::kV1PreC3831, digest, entry);
          const CalcOutputCache::Entry* found =
              cache.Find(CalcVersion::kV1PreC3831, digest);
          if (found == nullptr || found->ops != k || found->output.size() != 1 ||
              found->output[0] != static_cast<uint8_t>(k)) {
            mismatches.fetch_add(1);
          }
          (void)t;
        }
      });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  EXPECT_GE(cache.hits(), static_cast<uint64_t>(kKeys * kThreads));
}

TEST(ExperimentSuiteTest, JsonExcludesHostTiming) {
  SuiteReport report = ExperimentSuite(SmallGrid(2)).Run();
  EXPECT_GT(report.total_run_wall_seconds(), 0.0);
  EXPECT_EQ(report.ToJson().find("wall"), std::string::npos);
  EXPECT_EQ(report.ToJson().find("jobs"), std::string::npos);
}

}  // namespace
}  // namespace scalecheck
