#include <gtest/gtest.h>

#include "src/gossip/endpoint_state.h"

namespace scalecheck {
namespace {

TEST(EndpointStateTest, MaxVersionCoversHeartbeatAndAppStates) {
  EndpointState state(1);
  state.mutable_heartbeat().version = 5;
  EXPECT_EQ(state.MaxVersion(), 5);
  VersionedValue status;
  status.version = 9;
  status.status = StatusKind::kNormal;
  state.Set(ApplicationStateKey::kStatus, status);
  EXPECT_EQ(state.MaxVersion(), 9);
  state.mutable_heartbeat().version = 12;
  EXPECT_EQ(state.MaxVersion(), 12);
}

TEST(EndpointStateTest, StatusAccessors) {
  EndpointState state(1);
  EXPECT_EQ(state.Status(), StatusKind::kUnknown);
  EXPECT_TRUE(state.Tokens().empty());
  VersionedValue status;
  status.status = StatusKind::kLeaving;
  status.tokens = {10, 20};
  state.Set(ApplicationStateKey::kStatus, status);
  EXPECT_EQ(state.Status(), StatusKind::kLeaving);
  EXPECT_EQ(state.Tokens(), (std::vector<Token>{10, 20}));
}

TEST(EndpointStateTest, TokensFallBackToTokensState) {
  EndpointState state(1);
  VersionedValue tokens;
  tokens.tokens = {7};
  state.Set(ApplicationStateKey::kTokens, tokens);
  EXPECT_EQ(state.Tokens(), std::vector<Token>{7});
}

TEST(EndpointStateTest, GetReturnsNullForMissingKeys) {
  EndpointState state(1);
  EXPECT_EQ(state.Get(ApplicationStateKey::kLoad), nullptr);
  VersionedValue load;
  load.load = 0.7;
  state.Set(ApplicationStateKey::kLoad, load);
  ASSERT_NE(state.Get(ApplicationStateKey::kLoad), nullptr);
  EXPECT_DOUBLE_EQ(state.Get(ApplicationStateKey::kLoad)->load, 0.7);
}

TEST(EndpointStateTest, WireSizeGrowsWithContent) {
  EndpointState bare(1);
  EndpointState rich(1);
  VersionedValue status;
  status.status = StatusKind::kNormal;
  status.tokens.assign(100, 1);
  rich.Set(ApplicationStateKey::kStatus, status);
  EXPECT_GT(rich.WireSize(), bare.WireSize() + 100 * 8 - 1);
}

TEST(EndpointStateTest, DigestReflectsAllFields) {
  auto digest_of = [](int64_t gen, int64_t hb, StatusKind s) {
    EndpointState state(gen);
    state.mutable_heartbeat().version = hb;
    VersionedValue status;
    status.version = 1;
    status.status = s;
    state.Set(ApplicationStateKey::kStatus, status);
    Digest d;
    state.AddToDigest(&d);
    return d.Finish();
  };
  DigestValue base = digest_of(1, 1, StatusKind::kNormal);
  EXPECT_NE(digest_of(2, 1, StatusKind::kNormal), base);
  EXPECT_NE(digest_of(1, 2, StatusKind::kNormal), base);
  EXPECT_NE(digest_of(1, 1, StatusKind::kLeaving), base);
  EXPECT_EQ(digest_of(1, 1, StatusKind::kNormal), base);
}

TEST(StatusKindNames, AllDistinct) {
  EXPECT_STREQ(StatusKindName(StatusKind::kBootstrapping), "BOOT");
  EXPECT_STREQ(StatusKindName(StatusKind::kNormal), "NORMAL");
  EXPECT_STREQ(StatusKindName(StatusKind::kLeaving), "LEAVING");
  EXPECT_STREQ(StatusKindName(StatusKind::kLeft), "LEFT");
  EXPECT_STREQ(StatusKindName(StatusKind::kRemoved), "REMOVED");
}

}  // namespace
}  // namespace scalecheck
