#include <gtest/gtest.h>

#include "src/gossip/flap_counter.h"

namespace scalecheck {
namespace {

VirtualTime At(int64_t s) { return VirtualTime::Zero() + VirtualDuration::Seconds(s); }

TEST(FlapCounterTest, CountsDownTransitions) {
  FlapCounter fc;
  fc.RecordDown(1, 2, At(10));
  fc.RecordDown(1, 3, At(11));
  fc.RecordDown(2, 3, At(12));
  EXPECT_EQ(fc.total_flaps(), 3);
  EXPECT_EQ(fc.flapped_pairs(), 3);
  EXPECT_EQ(fc.FlapsByObserver(1), 2);
  EXPECT_EQ(fc.FlapsByObserver(2), 1);
  EXPECT_EQ(fc.FlapsByObserver(9), 0);
}

TEST(FlapCounterTest, RepeatedFlapsOnSamePairAccumulate) {
  FlapCounter fc;
  fc.RecordDown(1, 2, At(10));
  fc.RecordUp(1, 2, At(15));
  fc.RecordDown(1, 2, At(20));
  EXPECT_EQ(fc.total_flaps(), 2);
  EXPECT_EQ(fc.flapped_pairs(), 1);
}

TEST(FlapCounterTest, DowntimeMeasuredBetweenDownAndUp) {
  FlapCounter fc;
  fc.RecordDown(1, 2, At(10));
  fc.RecordUp(1, 2, At(17));
  EXPECT_EQ(fc.downtime_seconds().count(), 1);
  EXPECT_DOUBLE_EQ(fc.downtime_seconds().mean(), 7.0);
}

TEST(FlapCounterTest, UpWithoutDownIsIgnored) {
  FlapCounter fc;
  fc.RecordUp(1, 2, At(5));
  EXPECT_EQ(fc.total_flaps(), 0);
  EXPECT_EQ(fc.downtime_seconds().count(), 0);
}

TEST(FlapCounterTest, TimelineBucketsBy10Seconds) {
  FlapCounter fc;
  fc.RecordDown(1, 2, At(5));    // bucket 0
  fc.RecordDown(1, 3, At(15));   // bucket 1
  fc.RecordDown(2, 3, At(17));   // bucket 1
  ASSERT_EQ(fc.timeline().size(), 2u);
  EXPECT_EQ(fc.timeline().at(0), 1);
  EXPECT_EQ(fc.timeline().at(1), 2);
}

TEST(FlapCounterTest, ResetClearsEverything) {
  FlapCounter fc;
  fc.RecordDown(1, 2, At(5));
  fc.Reset();
  EXPECT_EQ(fc.total_flaps(), 0);
  EXPECT_EQ(fc.flapped_pairs(), 0);
  EXPECT_TRUE(fc.timeline().empty());
}

}  // namespace
}  // namespace scalecheck
