// EventFn is the SBO callable every simulator event rides on; these tests pin
// its contract: inline storage for hot-path-sized captures, heap fallback for
// oversized ones, move-only semantics, and immediate destruction on Reset.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

#include "src/sim/event_fn.h"

namespace scalecheck {
namespace {

TEST(EventFn, EmptyIsFalseAndInline) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
}

TEST(EventFn, SmallCapturesStayInline) {
  int x = 0;
  EventFn fn([&x] { x = 42; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(x, 42);
}

TEST(EventFn, CaptureAtTheInlineLimitStaysInline) {
  struct Fat {
    char bytes[EventFn::kInlineBytes - sizeof(int*)];
  };
  int ran = 0;
  EventFn fn([p = &ran, fat = Fat{}] { ++*p; (void)fat; });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(ran, 1);
}

TEST(EventFn, OversizedCapturesGoToHeapAndStillRun) {
  struct Huge {
    char bytes[EventFn::kInlineBytes + 1];
  };
  int ran = 0;
  EventFn fn([p = &ran, huge = Huge{}] { ++*p; (void)huge; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(ran, 1);
}

TEST(EventFn, MoveTransfersOwnershipAndEmptiesSource) {
  int x = 0;
  EventFn a([&x] { ++x; });
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);
}

TEST(EventFn, MoveAssignDestroysPreviousTarget) {
  auto before = std::make_shared<int>(1);
  auto after = std::make_shared<int>(2);
  EventFn target([before] { (void)*before; });
  EXPECT_EQ(before.use_count(), 2);
  target = EventFn([after] { (void)*after; });
  EXPECT_EQ(before.use_count(), 1);
  EXPECT_EQ(after.use_count(), 2);
}

TEST(EventFn, ResetDestroysCaptureImmediately) {
  auto payload = std::make_shared<int>(7);
  EventFn fn([payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  fn.Reset();
  EXPECT_EQ(payload.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, HeapBoxedCaptureIsDestroyed) {
  struct Huge {
    std::shared_ptr<int> payload;
    char pad[EventFn::kInlineBytes];
    void operator()() {}
  };
  auto payload = std::make_shared<int>(7);
  {
    EventFn fn(Huge{payload, {}});
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(payload.use_count(), 2);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventFn, MoveOnlyCallablesAccepted) {
  auto owned = std::make_unique<int>(41);
  int got = 0;
  EventFn fn([owned = std::move(owned), &got] { got = *owned + 1; });
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace scalecheck
