// Property sweep: the full scale-check pipeline must behave for EVERY bug
// scenario in the catalog — settle, hit the memo DB, keep determinism, and
// agree with real-scale testing at quiet scales.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

class BugCatalogTest : public ::testing::TestWithParam<int> {
 protected:
  static const BugSpec& SpecFor(int index) {
    return BugCatalog::All()[static_cast<size_t>(index)];
  }
};

TEST(BugCatalogRegistry, LookupMatchesEnumeration) {
  ASSERT_EQ(BugCatalog::All().size(), 6u);
  for (const BugSpec& spec : BugCatalog::All()) {
    EXPECT_EQ(BugCatalog::Get(spec.id).description, spec.description);
    EXPECT_EQ(BugCatalog::TryGet(spec.id), &BugCatalog::Get(spec.id));
  }
  EXPECT_EQ(BugCatalog::TryGet("no-such-bug"), nullptr);
  EXPECT_EQ(BugCatalog::Ids().size(), BugCatalog::All().size());
}

TEST_P(BugCatalogTest, FullPipelineAtQuietScale) {
  const BugSpec& spec = SpecFor(GetParam());
  ScaleCheckRunner runner(spec, 1234);
  ScaleCheckResult full = runner.RunFull(10);

  // At 10 nodes every scenario is quiet and settles in every mode.
  EXPECT_TRUE(full.real.settled) << spec.id << ": " << full.real.Summary();
  EXPECT_TRUE(full.colo.settled) << spec.id;
  EXPECT_TRUE(full.memoize.settled) << spec.id;
  EXPECT_TRUE(full.replay.settled) << spec.id;
  EXPECT_EQ(full.real.flaps, 0) << spec.id;
  EXPECT_EQ(full.replay.flaps, 0) << spec.id;

  // The memoization DB was used and never contradicted itself.
  EXPECT_GT(full.memo.records, 0u) << spec.id;
  EXPECT_EQ(full.memo.determinism_violations, 0u) << spec.id;
  EXPECT_GT(full.replay.pil.replay_hits, 0u) << spec.id;
  EXPECT_EQ(full.replay.pil.direct_runs, 0u) << spec.id;

  // Memoize is behaviourally identical to colo (recording must not perturb).
  EXPECT_EQ(full.memoize.flaps, full.colo.flaps) << spec.id;
  EXPECT_EQ(full.memoize.events_executed, full.colo.events_executed) << spec.id;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, BugCatalogTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace scalecheck
