// Self-healing suite execution: a cell that blows its wall-clock budget is
// retried deterministically and, if it keeps hanging, quarantined — the sweep
// always completes, surviving cells are byte-identical to a sweep that never
// contained the poison cell, and host parallelism changes nothing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/experiment_suite.h"

namespace scalecheck {
namespace {

BugSpec HealthySpec(const std::string& id) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.id = id;
  spec.horizon = VirtualDuration::Seconds(60);
  return spec;
}

// A cell that can never finish inside its budget: the per-spec watchdog
// override is so small that the simulator's first budget check (after 512
// events — any real run has far more) always trips. Deterministic poison on
// every host, unlike a genuine hang.
BugSpec PoisonSpec(const std::string& id) {
  BugSpec spec = HealthySpec(id);
  spec.wall_budget_seconds = 1e-9;
  return spec;
}

TEST(SelfHealTest, WatchdogQuarantinesAfterBoundedRetries) {
  ExperimentSpec grid;
  grid.bugs = {PoisonSpec("poison")};
  grid.modes = {RunMode::kColocated};
  grid.scales = {16};
  grid.max_cell_attempts = 3;
  SuiteReport report = ExperimentSuite(grid).Run();

  ASSERT_EQ(report.runs().size(), 1u);
  const RunRecord& record = report.runs()[0];
  EXPECT_TRUE(record.quarantined);
  EXPECT_EQ(record.quarantine_reason, "watchdog");
  EXPECT_EQ(record.attempts, 3);
  EXPECT_EQ(report.quarantined_count(), 1u);
  // The partial result was dropped, never serialized.
  const std::string json = SuiteReport::RecordJson(record);
  EXPECT_NE(json.find("\"status\":\"quarantined\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantine_reason\":\"watchdog\""), std::string::npos);
  EXPECT_EQ(json.find("\"result\""), std::string::npos) << json;
}

TEST(SelfHealTest, SweepCompletesAndSurvivorsMatchCleanSweepByteForByte) {
  // Mixed grid: one poison bug among two healthy ones.
  ExperimentSpec mixed;
  mixed.bugs = {HealthySpec("h1"), PoisonSpec("poison"), HealthySpec("h2")};
  mixed.modes = {RunMode::kRealScale, RunMode::kColocated};
  mixed.scales = {12, 16};
  SuiteReport mixed_report = ExperimentSuite(mixed).Run();

  // Control grid: the same sweep without the poison bug.
  ExperimentSpec clean;
  clean.bugs = {HealthySpec("h1"), HealthySpec("h2")};
  clean.modes = mixed.modes;
  clean.scales = mixed.scales;
  SuiteReport clean_report = ExperimentSuite(clean).Run();

  EXPECT_EQ(mixed_report.runs().size(), 12u);
  EXPECT_EQ(mixed_report.quarantined_count(), 4u);  // poison x 2 modes x 2 scales
  for (const RunRecord& record : mixed_report.runs()) {
    if (record.bug_id == "poison") {
      EXPECT_TRUE(record.quarantined);
      continue;
    }
    EXPECT_FALSE(record.quarantined) << record.bug_id;
    const RunRecord* control = clean_report.Find(record.bug_id, record.mode,
                                                 record.nodes, record.seed);
    ASSERT_NE(control, nullptr);
    EXPECT_EQ(SuiteReport::RecordJson(record), SuiteReport::RecordJson(*control))
        << record.bug_id << " n=" << record.nodes;
  }
}

TEST(SelfHealTest, ParallelExecutionMatchesSerialWithQuarantine) {
  auto build = [](int jobs) {
    ExperimentSpec grid;
    grid.bugs = {HealthySpec("h1"), PoisonSpec("poison")};
    grid.modes = {RunMode::kColocated, RunMode::kMemoize, RunMode::kPilReplay};
    grid.scales = {12, 16};
    grid.jobs = jobs;
    return ExperimentSuite(grid).Run();
  };
  SuiteReport serial = build(1);
  SuiteReport parallel = build(4);
  EXPECT_EQ(serial.ToJson(), parallel.ToJson());
  EXPECT_GT(serial.quarantined_count(), 0u);
}

TEST(SelfHealTest, QuarantineCascadesToDependentReplay) {
  // The poison bug's memoize cell hangs, so its replay's memo DB never gets
  // filled: the replay must be quarantined as a dependency casualty without
  // ever running (attempts stays 0), not run against a half-filled store.
  ExperimentSpec grid;
  grid.bugs = {PoisonSpec("poison")};
  grid.modes = {RunMode::kMemoize, RunMode::kPilReplay};
  grid.scales = {16};
  SuiteReport report = ExperimentSuite(grid).Run();

  const RunRecord* memoize =
      report.Find("poison", RunMode::kMemoize, 16, kDefaultSuiteSeed);
  const RunRecord* replay =
      report.Find("poison", RunMode::kPilReplay, 16, kDefaultSuiteSeed);
  ASSERT_NE(memoize, nullptr);
  ASSERT_NE(replay, nullptr);
  EXPECT_TRUE(memoize->quarantined);
  EXPECT_EQ(memoize->quarantine_reason, "watchdog");
  EXPECT_TRUE(replay->quarantined);
  EXPECT_EQ(replay->quarantine_reason, "dependency-quarantined");
  EXPECT_EQ(replay->attempts, 0);
}

TEST(SelfHealTest, SuiteWideBudgetAppliesWhenSpecHasNoOverride) {
  ExperimentSpec grid;
  grid.bugs = {HealthySpec("h1")};  // no per-spec override
  grid.modes = {RunMode::kColocated};
  grid.scales = {16};
  grid.cell_wall_budget_seconds = 1e-9;  // suite-wide poison budget
  grid.max_cell_attempts = 2;
  SuiteReport report = ExperimentSuite(grid).Run();
  ASSERT_EQ(report.runs().size(), 1u);
  EXPECT_TRUE(report.runs()[0].quarantined);
  EXPECT_EQ(report.runs()[0].attempts, 2);
}

TEST(SelfHealTest, SuccessfulCellsOmitAttemptCounts) {
  // A successful run's attempt count is host-dependent (a transient budget
  // trip retries); it must never reach the serialized record.
  ExperimentSpec grid;
  grid.bugs = {HealthySpec("h1")};
  grid.modes = {RunMode::kColocated};
  grid.scales = {12};
  SuiteReport report = ExperimentSuite(grid).Run();
  ASSERT_EQ(report.runs().size(), 1u);
  EXPECT_FALSE(report.runs()[0].quarantined);
  const std::string json = SuiteReport::RecordJson(report.runs()[0]);
  EXPECT_EQ(json.find("\"attempts\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos) << json;
}

TEST(SelfHealTest, RunSingleSurfacesWatchdogInResultAndVerdict) {
  BugSpec spec = HealthySpec("h1");
  RunOptions options;
  options.wall_budget_seconds = 1e-9;
  RunResult r = RunSingle(spec, 16, RunMode::kColocated, 7, options);
  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_EQ(r.fidelity.verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(r.fidelity.violated_budget, "watchdog");
}

}  // namespace
}  // namespace scalecheck
