#include <gtest/gtest.h>

#include <cstdio>

#include "src/pil/memo_store.h"

namespace scalecheck {
namespace {

DigestValue Key(uint64_t x) { return DigestValue{x, x * 31}; }

MemoRecord Record(std::vector<uint8_t> output, int64_t work) {
  MemoRecord r;
  r.output = std::move(output);
  r.work = work;
  r.cpu_duration = VirtualDuration::Nanos(work);
  return r;
}

TEST(MemoStoreTest, PutThenLookupHits) {
  MemoStore store;
  store.Put(1, Key(7), Record({1, 2, 3}, 100));
  const MemoRecord* rec = store.Lookup(1, Key(7));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->output, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(rec->cpu_duration.nanos(), 100);
  EXPECT_EQ(rec->sequence, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(store.HitRate(), 1.0);
}

TEST(MemoStoreTest, MissesAreCounted) {
  MemoStore store;
  EXPECT_EQ(store.Lookup(1, Key(9)), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(store.HitRate(), 0.0);
}

TEST(MemoStoreTest, FunctionIdPartOfKey) {
  MemoStore store;
  store.Put(1, Key(7), Record({1}, 10));
  EXPECT_EQ(store.Lookup(2, Key(7)), nullptr);
}

TEST(MemoStoreTest, DuplicatePutKeepsFirstAndCounts) {
  MemoStore store;
  store.Put(1, Key(7), Record({1}, 10));
  store.Put(1, Key(7), Record({1}, 20));  // same output: duplicate
  EXPECT_EQ(store.stats().duplicate_puts, 1u);
  EXPECT_EQ(store.stats().determinism_violations, 0u);
  EXPECT_EQ(store.Peek(1, Key(7))->cpu_duration.nanos(), 10);
}

TEST(MemoStoreTest, DifferentOutputFlagsDeterminismViolation) {
  MemoStore store;
  store.Put(1, Key(7), Record({1}, 10));
  store.Put(1, Key(7), Record({2}, 10));  // same input, DIFFERENT output!
  EXPECT_EQ(store.stats().determinism_violations, 1u);
}

TEST(MemoStoreTest, SequencesRecordOrder) {
  MemoStore store;
  store.Put(1, Key(1), Record({1}, 1));
  store.Put(1, Key(2), Record({2}, 1));
  store.Put(2, Key(3), Record({3}, 1));
  EXPECT_EQ(store.Peek(1, Key(1))->sequence, 1u);
  EXPECT_EQ(store.Peek(1, Key(2))->sequence, 2u);
  EXPECT_EQ(store.Peek(2, Key(3))->sequence, 3u);
}

TEST(MemoStoreTest, SerializeRoundTrips) {
  MemoStore store;
  store.Put(1, Key(1), Record({1, 2, 3, 4}, 111));
  store.Put(2, Key(2), Record({}, 222));  // empty output is legal
  store.Put(3, Key(3), Record(std::vector<uint8_t>(1000, 0xab), 333));

  std::vector<uint8_t> bytes = store.Serialize();
  MemoStore loaded;
  ASSERT_TRUE(MemoStore::Deserialize(bytes, &loaded));
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.output_bytes(), store.output_bytes());
  const MemoRecord* rec = loaded.Peek(3, Key(3));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->output.size(), 1000u);
  EXPECT_EQ(rec->cpu_duration.nanos(), 333);
  // Sequences survive, and new puts continue after the max.
  loaded.Put(4, Key(4), Record({9}, 1));
  EXPECT_EQ(loaded.Peek(4, Key(4))->sequence, 4u);
}

TEST(MemoStoreTest, DeserializeRejectsCorruptData) {
  MemoStore store;
  store.Put(1, Key(1), Record({1}, 1));
  std::vector<uint8_t> bytes = store.Serialize();

  MemoStore out;
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(MemoStore::Deserialize(bad_magic, &out));

  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(MemoStore::Deserialize(truncated, &out));

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(MemoStore::Deserialize(trailing, &out));
}

TEST(MemoStoreTest, FileRoundTrip) {
  MemoStore store;
  store.Put(1, Key(1), Record({5, 6}, 50));
  const char* path = "/tmp/scalecheck_memo_test.bin";
  ASSERT_TRUE(store.SaveToFile(path));
  MemoStore loaded;
  ASSERT_TRUE(MemoStore::LoadFromFile(path, &loaded));
  EXPECT_EQ(loaded.size(), 1u);
  ASSERT_NE(loaded.Peek(1, Key(1)), nullptr);
  std::remove(path);
  EXPECT_FALSE(MemoStore::LoadFromFile("/nonexistent/nope.bin", &loaded));
}

}  // namespace
}  // namespace scalecheck
