// TcpTransport link-filter tests (the real-socket half of the LinkFilter
// seam): a FaultInjector-style filter must be able to partition a localhost
// cluster — frames refused before any dial, counted as blocked, and
// delivery restored the moment the filter clears. SeverConnsTo must kill
// established streams so a partition does not let buffered frames leak
// through. The concurrent install/clear test runs under TSan via
// scripts/check_thread_safety.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/gossip/messages.h"
#include "src/net/tcp_transport.h"
#include "src/transport/link_filter.h"

namespace scalecheck {
namespace {

std::shared_ptr<const Payload> Tagged(int64_t marker) {
  auto syn = std::make_shared<SynPayload>();
  syn->digests = {{.endpoint = 1, .generation = marker, .max_version = 0}};
  return syn;
}

struct Inbox {
  std::mutex mu;
  std::vector<Message> received;

  Transport::Handler HandlerFn() {
    return [this](const Message& msg) {
      std::lock_guard<std::mutex> lock(mu);
      received.push_back(msg);
    };
  }
  size_t Size() {
    std::lock_guard<std::mutex> lock(mu);
    return received.size();
  }
};

bool WaitFor(std::function<bool()> pred) {
  for (int spins = 0; spins < 2000; ++spins) {  // up to ~10s wall
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(TcpLinkFilter, BlockedLinksRefuseFramesAndCountThem) {
  TcpTransport transport;
  Inbox a, b;
  transport.RegisterNode(1, a.HandlerFn());
  transport.RegisterNode(2, b.HandlerFn());

  // Block 1 -> 2 only; the reverse direction must still deliver.
  transport.SetLinkFilter([](NodeId from, NodeId to) {
    LinkFault fault;
    fault.blocked = (from == 1 && to == 2);
    return fault;
  });
  EXPECT_EQ(transport.Send(1, 2, kGossipSyn, Tagged(1)), 0u);
  EXPECT_NE(transport.Send(2, 1, kGossipSyn, Tagged(2)), 0u);
  ASSERT_TRUE(WaitFor([&] { return a.Size() >= 1; }));
  EXPECT_EQ(b.Size(), 0u);
  EXPECT_EQ(transport.messages_blocked(), 1u);
  EXPECT_GE(transport.messages_dropped(), 1u);

  // Clearing the filter restores the link immediately.
  transport.SetLinkFilter(nullptr);
  EXPECT_NE(transport.Send(1, 2, kGossipSyn, Tagged(3)), 0u);
  ASSERT_TRUE(WaitFor([&] { return b.Size() >= 1; }));
  EXPECT_EQ(transport.messages_blocked(), 1u);  // unchanged after clear

  transport.UnregisterNode(1);
  transport.UnregisterNode(2);
}

TEST(TcpLinkFilter, ExtraLossDropsProbabilisticallyButNeverBlocksAll) {
  TcpTransport transport;
  Inbox b;
  transport.RegisterNode(1, Transport::Handler([](const Message&) {}));
  transport.RegisterNode(2, b.HandlerFn());
  transport.SetLinkFilter([](NodeId, NodeId) {
    LinkFault fault;
    fault.extra_loss = 0.5;
    return fault;
  });
  constexpr int kCount = 200;
  int accepted = 0;
  for (int i = 0; i < kCount; ++i) {
    if (transport.Send(1, 2, kGossipSyn, Tagged(i)) != 0u) {
      ++accepted;
    }
  }
  // Half-loss over 200 frames: both outcomes must occur, and none of the
  // drops are "blocked" (that counter is reserved for hard partitions).
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, kCount);
  EXPECT_EQ(transport.messages_blocked(), 0u);
  EXPECT_EQ(transport.messages_dropped(),
            static_cast<uint64_t>(kCount - accepted));
  ASSERT_TRUE(WaitFor([&] { return b.Size() >= static_cast<size_t>(accepted); }));

  transport.UnregisterNode(1);
  transport.UnregisterNode(2);
}

TEST(TcpLinkFilter, SeverConnsToKillsEstablishedStreams) {
  TcpTransport transport;
  Inbox b;
  transport.RegisterNode(1, Transport::Handler([](const Message&) {}));
  transport.RegisterNode(2, b.HandlerFn());

  // Establish the 1 -> 2 stream, then sever. Sends must not keep riding the
  // pre-fault socket: the first frame to hit the dead fd is dropped (that is
  // the point — a partition kills in-flight streams), after which the
  // transport redials instead of wedging.
  ASSERT_NE(transport.Send(1, 2, kGossipSyn, Tagged(1)), 0u);
  ASSERT_TRUE(WaitFor([&] { return b.Size() >= 1; }));
  transport.SeverConnsTo(2);
  uint64_t id = 0;
  int drops = 0;
  for (int attempt = 0; attempt < 5 && id == 0; ++attempt) {
    id = transport.Send(1, 2, kGossipSyn, Tagged(2));
    if (id == 0) {
      ++drops;
    }
  }
  EXPECT_NE(id, 0u) << "transport wedged after SeverConnsTo";
  EXPECT_GE(drops, 1) << "severed stream delivered without a drop";
  ASSERT_TRUE(WaitFor([&] { return b.Size() >= 2; }));

  transport.UnregisterNode(1);
  transport.UnregisterNode(2);
}

TEST(TcpLinkFilter, ConcurrentInstallClearAndSendIsRaceFree) {
  // Senders run on arbitrary threads while the injector installs, swaps,
  // and clears the filter; under TSan this is the proof the filter handoff
  // is properly synchronized.
  TcpTransport transport;
  Inbox b;
  transport.RegisterNode(1, Transport::Handler([](const Message&) {}));
  transport.RegisterNode(2, b.HandlerFn());

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load()) {
      transport.SetLinkFilter([](NodeId, NodeId) {
        LinkFault fault;
        fault.blocked = true;
        return fault;
      });
      transport.SetLinkFilter(nullptr);
    }
  });
  std::thread severer([&] {
    while (!stop.load()) {
      transport.SeverConnsTo(2);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  uint64_t accepted = 0;
  for (int i = 0; i < 500; ++i) {
    if (transport.Send(1, 2, kGossipSyn, Tagged(i)) != 0u) {
      ++accepted;
    }
  }
  stop.store(true);
  flipper.join();
  severer.join();
  // Every send either went out or was counted as a drop (blocked refusals
  // plus any write that lost the race with a sever).
  EXPECT_GE(accepted + transport.messages_dropped(), 500u);
  EXPECT_LE(transport.messages_blocked(), transport.messages_dropped());

  transport.UnregisterNode(1);
  transport.UnregisterNode(2);
}

}  // namespace
}  // namespace scalecheck
