// Wire-codec tests (satellite: one codec behind both carriers).
//
// Round-trips every message type the protocol layer sends, then attacks the
// decoder: truncation at every byte prefix, corrupt magic/version/type,
// out-of-range discriminators, trailing garbage. The decoder must reject all
// of it with a typed Status — never crash, never silently accept.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/gossip/messages.h"
#include "src/kv/kv_service.h"
#include "src/net/wire.h"

namespace scalecheck {
namespace {

Message Frame(int type, std::shared_ptr<const Payload> payload) {
  Message msg;
  msg.id = 424242;
  msg.from = 3;
  msg.to = 9;
  msg.type = type;
  msg.pair_seq = 77;
  msg.payload = std::move(payload);
  return msg;
}

EndpointState FullState() {
  EndpointState state(/*generation=*/1700000001);
  state.mutable_heartbeat().version = 42;
  VersionedValue status;
  status.version = 17;
  status.status = StatusKind::kNormal;
  status.tokens = {0x1111222233334444ull, 0xdeadbeefcafef00dull};
  state.Set(ApplicationStateKey::kStatus, status);
  VersionedValue load;
  load.version = 19;
  load.load = 0.625;
  state.Set(ApplicationStateKey::kLoad, load);
  VersionedValue tokens;
  tokens.version = 21;
  tokens.tokens = {1, 2, 3};
  state.Set(ApplicationStateKey::kTokens, tokens);
  return state;
}

void ExpectHeaderEqual(const Message& in, const Message& out) {
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.from, in.from);
  EXPECT_EQ(out.to, in.to);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.pair_seq, in.pair_seq);
}

void ExpectStatesEqual(const EndpointStateMap& in, const EndpointStateMap& out) {
  ASSERT_EQ(out.size(), in.size());
  for (const auto& [node, state] : in) {
    auto it = out.find(node);
    ASSERT_NE(it, out.end()) << "node " << node;
    EXPECT_EQ(it->second.heartbeat().generation, state.heartbeat().generation);
    EXPECT_EQ(it->second.heartbeat().version, state.heartbeat().version);
    EXPECT_EQ(it->second.MaxVersion(), state.MaxVersion());
    ASSERT_EQ(it->second.app_states().size(), state.app_states().size());
    for (const auto& [key, value] : state.app_states()) {
      const VersionedValue* got = it->second.Get(key);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->version, value.version);
      EXPECT_EQ(got->status, value.status);
      EXPECT_DOUBLE_EQ(got->load, value.load);
      EXPECT_EQ(got->tokens, value.tokens);
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(WireCodec, SynRoundTrip) {
  auto syn = std::make_shared<SynPayload>();
  syn->digests = {{.endpoint = 0, .generation = 100, .max_version = 7},
                  {.endpoint = 5, .generation = 200, .max_version = 0}};
  Message in = Frame(kGossipSyn, syn);
  Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectHeaderEqual(in, out.value());
  auto* decoded = static_cast<const SynPayload*>(out.value().payload.get());
  ASSERT_EQ(decoded->digests.size(), 2u);
  EXPECT_EQ(decoded->digests[0].endpoint, 0);
  EXPECT_EQ(decoded->digests[0].generation, 100);
  EXPECT_EQ(decoded->digests[1].endpoint, 5);
  EXPECT_EQ(decoded->digests[1].max_version, 0);
}

TEST(WireCodec, EmptySynRoundTrip) {
  Message in = Frame(kGossipSyn, std::make_shared<SynPayload>());
  Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto* decoded = static_cast<const SynPayload*>(out.value().payload.get());
  EXPECT_TRUE(decoded->digests.empty());
}

TEST(WireCodec, AckRoundTripWithStatesAndRequests) {
  auto ack = std::make_shared<AckPayload>();
  ack->states.emplace(NodeId{2}, FullState());
  ack->states.emplace(NodeId{11}, EndpointState(123456789));
  ack->requests = {{.endpoint = 8, .generation = 300, .max_version = 12}};
  Message in = Frame(kGossipAck, ack);
  Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectHeaderEqual(in, out.value());
  auto* decoded = static_cast<const AckPayload*>(out.value().payload.get());
  ExpectStatesEqual(ack->states, decoded->states);
  ASSERT_EQ(decoded->requests.size(), 1u);
  EXPECT_EQ(decoded->requests[0].endpoint, 8);
}

TEST(WireCodec, Ack2RoundTrip) {
  auto ack2 = std::make_shared<Ack2Payload>();
  ack2->states.emplace(NodeId{0}, FullState());
  Message in = Frame(kGossipAck2, ack2);
  Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto* decoded = static_cast<const Ack2Payload*>(out.value().payload.get());
  ExpectStatesEqual(ack2->states, decoded->states);
}

TEST(WireCodec, KvRequestRoundTrip) {
  auto req = std::make_shared<KvRequestPayload>();
  req->op_id = 0xfeedfacefeedfaceull;
  req->key = 7919;
  req->value = std::string("hello\0world", 11);  // embedded NUL survives
  req->timestamp = -5;                           // negative survives
  for (int type : {kKvWriteReq, kKvReadReq}) {
    Message in = Frame(type, req);
    Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ExpectHeaderEqual(in, out.value());
    auto* decoded =
        static_cast<const KvRequestPayload*>(out.value().payload.get());
    EXPECT_EQ(decoded->op_id, req->op_id);
    EXPECT_EQ(decoded->key, req->key);
    EXPECT_EQ(decoded->value, req->value);
    EXPECT_EQ(decoded->timestamp, req->timestamp);
  }
}

TEST(WireCodec, KvResponseRoundTrip) {
  auto resp = std::make_shared<KvResponsePayload>();
  resp->op_id = 9;
  resp->ack = true;
  resp->found = true;
  resp->timestamp = 1234;
  resp->value = "v42";
  for (int type : {kKvWriteResp, kKvReadResp}) {
    Message in = Frame(type, resp);
    Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto* decoded =
        static_cast<const KvResponsePayload*>(out.value().payload.get());
    EXPECT_EQ(decoded->op_id, resp->op_id);
    EXPECT_TRUE(decoded->ack);
    EXPECT_TRUE(decoded->found);
    EXPECT_EQ(decoded->timestamp, resp->timestamp);
    EXPECT_EQ(decoded->value, resp->value);
  }
}

// ---------------------------------------------------------------------------
// Rejection: the fuzz-ish part.

std::string EncodeRepresentative() {
  auto ack = std::make_shared<AckPayload>();
  ack->states.emplace(NodeId{2}, FullState());
  ack->requests = {{.endpoint = 8, .generation = 300, .max_version = 12}};
  return wire::EncodeMessage(Frame(kGossipAck, ack));
}

TEST(WireCodec, TruncationAtEveryPrefixRejected) {
  const std::string frame = EncodeRepresentative();
  ASSERT_GT(frame.size(), wire::kHeaderSize);
  for (size_t len = 0; len < frame.size(); ++len) {
    Result<Message> out = wire::DecodeMessage(frame.substr(0, len));
    EXPECT_FALSE(out.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Sanity: the full frame still decodes.
  EXPECT_TRUE(wire::DecodeMessage(frame).ok());
}

TEST(WireCodec, CorruptMagicVersionTypeRejected) {
  const std::string frame = EncodeRepresentative();
  {
    std::string bad = frame;
    bad[0] = static_cast<char>(0x00);  // magic
    Result<Message> out = wire::DecodeMessage(bad);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
  }
  {
    std::string bad = frame;
    bad[1] = static_cast<char>(wire::kVersion + 1);
    EXPECT_FALSE(wire::DecodeMessage(bad).ok());
  }
  {
    std::string bad = frame;
    bad[2] = static_cast<char>(0x7f);  // type -> unknown discriminator
    Result<Message> out = wire::DecodeMessage(bad);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
  }
}

TEST(WireCodec, TrailingGarbageRejected) {
  std::string frame = EncodeRepresentative();
  frame += '\x01';
  Result<Message> out = wire::DecodeMessage(frame);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
}

TEST(WireCodec, KvResponseRejectsUnknownFlagBits) {
  auto resp = std::make_shared<KvResponsePayload>();
  resp->op_id = 9;
  resp->ack = true;
  std::string frame = wire::EncodeMessage(Frame(kKvWriteResp, resp));
  // flags is the first body byte after op_id (header + 8).
  const size_t flags_at = wire::kHeaderSize + 8;
  ASSERT_LT(flags_at, frame.size());
  frame[flags_at] = static_cast<char>(0x80 | frame[flags_at]);
  EXPECT_FALSE(wire::DecodeMessage(frame).ok());
}

TEST(WireCodec, RandomByteFlipsNeverCrash) {
  const std::string frame = EncodeRepresentative();
  // Deterministic walk: flip each byte to a handful of values; the decoder
  // must return (ok or error), never crash or hang.
  int accepted = 0;
  for (size_t i = 0; i < frame.size(); ++i) {
    for (uint8_t delta : {0x01, 0x80, 0xff}) {
      std::string bad = frame;
      bad[i] = static_cast<char>(bad[i] ^ delta);
      if (wire::DecodeMessage(bad).ok()) {
        ++accepted;
      }
    }
  }
  // Many single-byte flips legitimately decode (they only change values,
  // not structure); the point is the loop completed without UB. Still, the
  // magic/version/type bytes alone guarantee some rejects.
  EXPECT_LT(accepted, static_cast<int>(frame.size() * 3));
}

}  // namespace
}  // namespace scalecheck
