// Delta+varint digest section codec: round-trip fidelity, exact size
// accounting (MeasureBytes IS the network model's byte charge), and
// classification of truncated / corrupt input as decode failure rather
// than garbage output or a huge allocation.

#include "src/gossip/digest_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace scalecheck {
namespace {

std::vector<GossipDigest> RoundTrip(const std::vector<GossipDigest>& in) {
  std::string buf;
  digest_codec::Encode(in, &buf);
  EXPECT_EQ(buf.size(), digest_codec::MeasureBytes(in))
      << "MeasureBytes must equal the actual encoding";
  std::vector<GossipDigest> out;
  size_t pos = 0;
  EXPECT_TRUE(digest_codec::Decode(buf, &pos, &out));
  EXPECT_EQ(pos, buf.size());
  return out;
}

void ExpectSame(const std::vector<GossipDigest>& a,
                const std::vector<GossipDigest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].endpoint, b[i].endpoint) << "entry " << i;
    EXPECT_EQ(a[i].generation, b[i].generation) << "entry " << i;
    EXPECT_EQ(a[i].max_version, b[i].max_version) << "entry " << i;
  }
}

TEST(DigestCodec, EmptyListRoundTrips) {
  std::vector<GossipDigest> empty;
  ExpectSame(RoundTrip(empty), empty);
  EXPECT_EQ(digest_codec::MeasureBytes(empty), 1u);  // just the count varint
}

TEST(DigestCodec, SortedDenseListRoundTrips) {
  std::vector<GossipDigest> digests;
  for (NodeId ep = 0; ep < 100; ++ep) {
    digests.push_back({.endpoint = ep, .generation = 1754000000, .max_version = 4000 + ep});
  }
  ExpectSame(RoundTrip(digests), digests);
  // The compression claim: dense sorted steady-state digests cost a few
  // bytes per entry, nowhere near the 20-byte fixed encoding.
  EXPECT_LT(digest_codec::MeasureBytes(digests), digests.size() * 8);
}

TEST(DigestCodec, UnsortedAndNegativeDeltasStillRoundTrip) {
  std::vector<GossipDigest> digests = {
      {.endpoint = 500, .generation = 99, .max_version = 1},
      {.endpoint = 3, .generation = INT64_MAX, .max_version = 0},
      {.endpoint = 2047, .generation = 0, .max_version = INT64_MAX},
      {.endpoint = 0, .generation = 7, .max_version = 7},
  };
  ExpectSame(RoundTrip(digests), digests);
}

TEST(DigestCodec, FuzzRoundTrip) {
  Rng rng(0xd1635);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<GossipDigest> digests;
    size_t n = rng.Next() % 64;
    for (size_t i = 0; i < n; ++i) {
      digests.push_back({.endpoint = static_cast<NodeId>(rng.Next() % 4096),
                         .generation = static_cast<int64_t>(rng.Next() % (1ull << 40)),
                         .max_version = static_cast<int64_t>(rng.Next() % (1ull << 20))});
    }
    ExpectSame(RoundTrip(digests), digests);
  }
}

TEST(DigestCodec, DecodeAdvancesPosPastSectionOnly) {
  std::vector<GossipDigest> digests = {{.endpoint = 1, .generation = 2, .max_version = 3}};
  std::string buf = "##";  // preceding bytes
  size_t section_start = buf.size();
  digest_codec::Encode(digests, &buf);
  size_t section_end = buf.size();
  buf += "trailing";
  size_t pos = section_start;
  std::vector<GossipDigest> out;
  ASSERT_TRUE(digest_codec::Decode(buf, &pos, &out));
  EXPECT_EQ(pos, section_end) << "must not consume trailing bytes";
  ExpectSame(out, digests);
}

TEST(DigestCodec, TruncationAtEveryByteFailsCleanly) {
  std::vector<GossipDigest> digests;
  for (NodeId ep = 0; ep < 10; ++ep) {
    digests.push_back({.endpoint = ep, .generation = 1000000 + ep, .max_version = ep * 37});
  }
  std::string buf;
  digest_codec::Encode(digests, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string truncated = buf.substr(0, cut);
    size_t pos = 0;
    std::vector<GossipDigest> out;
    EXPECT_FALSE(digest_codec::Decode(truncated, &pos, &out))
        << "truncation at byte " << cut << " must be detected";
  }
}

TEST(DigestCodec, CorruptCountRejectedWithoutHugeAllocation) {
  // A count claiming 2^40 entries with a 3-byte body must be rejected by the
  // count-vs-remaining guard (not attempted as a 2^40-element resize).
  std::string buf;
  buf.push_back(static_cast<char>(0x80 | 0x00));
  buf.push_back(static_cast<char>(0x80 | 0x00));
  buf.push_back(static_cast<char>(0x80 | 0x00));
  buf.push_back(static_cast<char>(0x80 | 0x00));
  buf.push_back(static_cast<char>(0x80 | 0x00));
  buf.push_back(0x01);  // varint 2^35
  buf += "\x00\x00\x00";
  size_t pos = 0;
  std::vector<GossipDigest> out;
  EXPECT_FALSE(digest_codec::Decode(buf, &pos, &out));
}

TEST(DigestCodec, EndpointDeltaOverflowRejected) {
  // Hand-craft deltas that walk the running endpoint outside int32 range:
  // count=1, endpoint delta = 2^40 (zigzag), generation/version = 0.
  std::string buf;
  buf.push_back(0x01);  // count = 1
  // zigzag(2^40) = 2^41 as unsigned varint.
  uint64_t z = (1ull << 41);
  while (z >= 0x80) {
    buf.push_back(static_cast<char>(0x80 | (z & 0x7f)));
    z >>= 7;
  }
  buf.push_back(static_cast<char>(z));
  buf.push_back(0x00);  // generation delta
  buf.push_back(0x00);  // version delta
  size_t pos = 0;
  std::vector<GossipDigest> out;
  EXPECT_FALSE(digest_codec::Decode(buf, &pos, &out));
}

}  // namespace
}  // namespace scalecheck
