#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace scalecheck {
namespace {

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim(1);
  std::vector<double> times;
  sim.ScheduleAfter(VirtualDuration::Seconds(2), [&] { times.push_back(sim.Now().seconds()); });
  sim.ScheduleAfter(VirtualDuration::Seconds(1), [&] { times.push_back(sim.Now().seconds()); });
  uint64_t executed = sim.RunUntilIdle();
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulatorTest, RunStopsAtHorizonAndAdvancesClock) {
  Simulator sim(1);
  bool late_ran = false;
  sim.ScheduleAfter(VirtualDuration::Seconds(10), [&] { late_ran = true; });
  sim.Run(VirtualTime::Zero() + VirtualDuration::Seconds(5));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.Now().seconds(), 5.0);  // clock moved to the horizon
  sim.RunUntilIdle();
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, EventExactlyAtHorizonRuns) {
  Simulator sim(1);
  bool ran = false;
  sim.ScheduleAfter(VirtualDuration::Seconds(5), [&] { ran = true; });
  sim.Run(VirtualTime::Zero() + VirtualDuration::Seconds(5));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(VirtualDuration::Millis(1), chain);
    }
  };
  sim.ScheduleAfter(VirtualDuration::Millis(1), chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ((sim.Now() - VirtualTime::Zero()).millis() % 1000, 5);
}

TEST(SimulatorTest, RequestStopExitsRun) {
  Simulator sim(1);
  int ran = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAfter(VirtualDuration::Seconds(i), [&] {
      if (++ran == 3) {
        sim.RequestStop();
      }
    });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(SimulatorTest, CancelStopsEvent) {
  Simulator sim(1);
  bool ran = false;
  EventId id = sim.ScheduleAfter(VirtualDuration::Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, SchedulingIntoThePastDies) {
  Simulator sim(1);
  sim.ScheduleAfter(VirtualDuration::Seconds(5), [] {});
  sim.RunUntilIdle();
  EXPECT_DEATH(sim.ScheduleAt(VirtualTime::Zero(), [] {}), "past");
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  Simulator sim(1);
  std::vector<int64_t> fire_ms;
  PeriodicTimer timer(&sim, VirtualDuration::Millis(100),
                      [&] { fire_ms.push_back((sim.Now() - VirtualTime::Zero()).millis()); });
  timer.Start(VirtualDuration::Millis(50));
  sim.Run(VirtualTime::Zero() + VirtualDuration::Millis(360));
  EXPECT_EQ(fire_ms, (std::vector<int64_t>{50, 150, 250, 350}));
}

TEST(PeriodicTimerTest, StopPreventsFutureFirings) {
  Simulator sim(1);
  int fires = 0;
  PeriodicTimer timer(&sim, VirtualDuration::Millis(10), [&] {
    if (++fires == 3) {
      timer.Stop();
    }
  });
  timer.Start(VirtualDuration::Zero());
  sim.RunUntilIdle();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.armed());
}

TEST(PeriodicTimerTest, DestructionWhileArmedIsSafe) {
  Simulator sim(1);
  {
    PeriodicTimer timer(&sim, VirtualDuration::Millis(10), [] {});
    timer.Start(VirtualDuration::Zero());
  }
  // The cancelled event must not fire a dangling callback.
  sim.Run(VirtualTime::Zero() + VirtualDuration::Millis(100));
}

}  // namespace
}  // namespace scalecheck
