// Damage-model tests for the KV write-ahead log (src/kv/wal.h).
//
// The WAL follows the MemoStore v2 format discipline (magic+version header
// with its own CRC, per-record payload CRCs) but its recovery contract is
// the commit-log one: REPLAY the longest valid prefix and classify how the
// tail was damaged, instead of rejecting the whole stream. These tests pin
// both halves: every truncation point recovers exactly the records that fit
// (classified kTruncated), and every single-bit flip is detected (never a
// silent wrong record) while still yielding an intact prefix.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/kv/storage_engine.h"
#include "src/kv/wal.h"

namespace scalecheck {
namespace {

struct Sample {
  uint64_t key;
  int64_t timestamp;
  std::string value;
};

const std::vector<Sample>& Samples() {
  static const std::vector<Sample> kSamples = {
      {1, 100, "alpha"},
      {2, 200, ""},  // empty value: exercises the length edge
      {0xffffffffffffffffULL, -5, "negative-timestamp"},
      {3, 300, std::string(257, 'x')},  // larger than one cache line
  };
  return kSamples;
}

KvWal SampleWal() {
  KvWal wal;
  for (const Sample& s : Samples()) {
    wal.Append(s.key, s.timestamp, s.value);
  }
  wal.Sync();
  return wal;
}

void ExpectPrefixOfSamples(const std::vector<KvWal::Record>& records) {
  ASSERT_LE(records.size(), Samples().size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].key, Samples()[i].key);
    EXPECT_EQ(records[i].timestamp, Samples()[i].timestamp);
    EXPECT_EQ(records[i].value, Samples()[i].value);
  }
}

TEST(KvWalTest, RoundTripRecoversAllSyncedRecords) {
  KvWal wal = SampleWal();
  KvWal::RecoverResult out = KvWal::Recover(wal.DurableImage());
  EXPECT_TRUE(out.damage.ok()) << out.damage.ToString();
  EXPECT_EQ(out.records.size(), Samples().size());
  ExpectPrefixOfSamples(out.records);
  EXPECT_EQ(out.bytes_replayed, wal.durable_bytes());
  EXPECT_EQ(out.bytes_dropped, 0);
}

TEST(KvWalTest, UnsyncedTailIsNotInTheCrashImage) {
  KvWal wal = SampleWal();
  wal.Append(99, 999, "never-synced");
  wal.Append(98, 998, "also-never-synced");
  EXPECT_EQ(wal.records_appended(), static_cast<int64_t>(Samples().size()) + 2);
  EXPECT_EQ(wal.records_synced(), static_cast<int64_t>(Samples().size()));
  EXPECT_GT(wal.unsynced_bytes(), 0);

  // The crash image holds only the synced prefix.
  KvWal::RecoverResult out = KvWal::Recover(wal.DurableImage());
  EXPECT_TRUE(out.damage.ok());
  EXPECT_EQ(out.records.size(), Samples().size());

  // DropUnsynced reports exactly the lost records and resets the tail.
  EXPECT_EQ(wal.DropUnsynced(), 2);
  EXPECT_EQ(wal.unsynced_bytes(), 0);
  EXPECT_EQ(wal.total_bytes(), wal.durable_bytes());
  EXPECT_EQ(wal.DropUnsynced(), 0);
}

TEST(KvWalTest, EveryTruncationRecoversTheValidPrefixAsTruncated) {
  const KvWal wal = SampleWal();
  const std::vector<uint8_t>& good = wal.bytes();
  // Record boundaries: a truncation landing exactly on one leaves a valid,
  // shorter WAL — recovery cannot know more ever followed, so it reads
  // clean. Everywhere else the tail is torn and must classify kTruncated.
  std::set<size_t> boundaries = {16};  // header-only image: zero records
  size_t at = 16;
  for (const Sample& s : Samples()) {
    at += 4 + (24 + s.value.size()) + 4;  // len prefix + payload + crc
    boundaries.insert(at);
  }
  ASSERT_EQ(at, good.size());
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(len));
    KvWal::RecoverResult out = KvWal::Recover(cut);
    if (boundaries.count(len) != 0) {
      ASSERT_TRUE(out.damage.ok())
          << "clean prefix of " << len << " bytes read damaged: "
          << out.damage.ToString();
      EXPECT_EQ(out.bytes_dropped, 0);
    } else {
      ASSERT_FALSE(out.damage.ok())
          << "prefix of " << len << " bytes read clean";
      ASSERT_EQ(out.damage.code(), StatusCode::kTruncated)
          << "prefix of " << len << " bytes misclassified as "
          << out.damage.ToString();
    }
    ExpectPrefixOfSamples(out.records);
    EXPECT_EQ(out.bytes_replayed + out.bytes_dropped,
              static_cast<int64_t>(len));
  }
}

TEST(KvWalTest, EveryBitFlipIsDetectedAndThePrefixSurvives) {
  const KvWal wal = SampleWal();
  const std::vector<uint8_t>& good = wal.bytes();
  for (size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = good;
      bad[byte] ^= static_cast<uint8_t>(1u << bit);
      KvWal::RecoverResult out = KvWal::Recover(bad);
      // No flip may read clean: the CRCs (header and per-record) catch every
      // single-bit error by construction.
      ASSERT_FALSE(out.damage.ok())
          << "flip of byte " << byte << " bit " << bit << " read clean";
      // Records ahead of the damage replay intact and unmodified; a flipped
      // length prefix may masquerade as a torn tail (kTruncated), anything
      // else is kCorruptData — never kOk, never a wrong record.
      ExpectPrefixOfSamples(out.records);
    }
  }
}

TEST(KvWalTest, TornTailVersusBitRotClassification) {
  const KvWal wal = SampleWal();
  // Tear mid-way through the last record's payload: a crash signature.
  std::vector<uint8_t> torn = wal.bytes();
  torn.resize(torn.size() - 3);
  EXPECT_EQ(KvWal::Recover(torn).damage.code(), StatusCode::kTruncated);
  // Flip a payload byte of the last record: bit rot, not a tear.
  std::vector<uint8_t> rotten = wal.bytes();
  rotten[rotten.size() - 6] ^= 0x01;
  EXPECT_EQ(KvWal::Recover(rotten).damage.code(), StatusCode::kCorruptData);
}

TEST(KvWalTest, ForeignVersionIsVersionSkew) {
  // A header whose CRC is valid but whose version field is from the future
  // must be named version skew, not lumped in with bit rot.
  std::vector<uint8_t> bytes;
  const uint64_t magic = 0x53434b5657414c31ULL;  // "SCKVWAL1"
  const uint32_t version = 2;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&magic);
  bytes.insert(bytes.end(), p, p + sizeof(magic));
  p = reinterpret_cast<const uint8_t*>(&version);
  bytes.insert(bytes.end(), p, p + sizeof(version));
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  p = reinterpret_cast<const uint8_t*>(&crc);
  bytes.insert(bytes.end(), p, p + sizeof(crc));
  EXPECT_EQ(KvWal::Recover(bytes).damage.code(), StatusCode::kVersionSkew);
}

TEST(KvWalTest, ReplayIntoStorageIsIdempotentUnderLww) {
  // Hint replay and restart recovery both re-apply records carrying their
  // ORIGINAL timestamps; last-write-wins makes a double replay a no-op.
  KvWal wal = SampleWal();
  KvWal::RecoverResult out = KvWal::Recover(wal.DurableImage());
  StorageEngine engine;
  for (int round = 0; round < 2; ++round) {
    for (const KvWal::Record& rec : out.records) {
      engine.Put(rec.key, rec.value, rec.timestamp);
    }
  }
  for (const Sample& s : Samples()) {
    EXPECT_EQ(engine.TimestampOf(s.key), s.timestamp);
    WorkUnits work = 0;
    EXPECT_EQ(engine.Get(s.key, &work).value_or("<absent>"), s.value);
  }
}

}  // namespace
}  // namespace scalecheck
