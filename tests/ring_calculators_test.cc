// The calculator equivalence and cost-model property suite.
//
// Invariants:
//  1. Every generation produces output identical to the reference oracle for
//     every (ring size, vnodes, change pattern) — the bugs are about time,
//     never results.
//  2. ModelOps predicts Execute's counted ops (the cost models that drive
//     virtual-time charging are pinned to the real loop nests).
//  3. Run() switches between real execution and modelled cost at the
//     threshold without changing output.

#include <gtest/gtest.h>

#include <memory>

#include "src/ring/calc_internal.h"
#include "src/ring/calculators.h"

namespace scalecheck {
namespace {

struct CalcCase {
  CalcVersion version;
  int nodes;
  int vnodes;
  int leaving;
  int joining;
  double model_tolerance;  // relative tolerance for ModelOps vs Execute ops
};

std::string CaseName(const ::testing::TestParamInfo<CalcCase>& info) {
  const CalcCase& c = info.param;
  std::string name = CalcVersionName(c.version);
  for (char& ch : name) {
    if (ch == '-' || ch == '/') {
      ch = '_';
    }
  }
  return name + "_n" + std::to_string(c.nodes) + "_p" + std::to_string(c.vnodes) +
         "_l" + std::to_string(c.leaving) + "_j" + std::to_string(c.joining);
}

CalcInput BuildInput(const CalcCase& c, TokenRing* ring) {
  for (NodeId id = 0; id < c.nodes; ++id) {
    ring->AddNode(id, GenerateTokens(id, c.vnodes, 4242));
  }
  CalcInput input;
  input.ring = ring;
  input.rf = 3;
  for (int l = 0; l < c.leaving; ++l) {
    input.changes.push_back(PendingChange{l, ChangeKind::kLeaving, {}});
  }
  for (int j = 0; j < c.joining; ++j) {
    NodeId id = c.nodes + j;
    input.changes.push_back(
        PendingChange{id, ChangeKind::kJoining, GenerateTokens(id, c.vnodes, 4242)});
  }
  return input;
}

class CalculatorEquivalence : public ::testing::TestWithParam<CalcCase> {};

TEST_P(CalculatorEquivalence, OutputMatchesReference) {
  const CalcCase& c = GetParam();
  TokenRing ring;
  CalcInput input = BuildInput(c, &ring);
  CalcResult expected = ComputeReferencePendingRanges(input);
  auto calc = MakeCalculator(c.version);
  CalcResult actual = calc->Execute(input);
  EXPECT_EQ(actual.pending, expected.pending)
      << calc->name() << ": " << actual.pending.size() << " vs "
      << expected.pending.size() << " pending entries";
}

TEST_P(CalculatorEquivalence, ModelOpsTracksExecuteOps) {
  const CalcCase& c = GetParam();
  TokenRing ring;
  CalcInput input = BuildInput(c, &ring);
  auto calc = MakeCalculator(c.version);
  CalcResult executed = calc->Execute(input);
  int64_t modelled = calc->ModelOps(input);
  ASSERT_GT(executed.ops, 0);
  ASSERT_GT(modelled, 0);
  double ratio = static_cast<double>(modelled) / static_cast<double>(executed.ops);
  EXPECT_GE(ratio, 1.0 - c.model_tolerance)
      << calc->name() << " modelled=" << modelled << " executed=" << executed.ops;
  EXPECT_LE(ratio, 1.0 + c.model_tolerance)
      << calc->name() << " modelled=" << modelled << " executed=" << executed.ops;
}

TEST_P(CalculatorEquivalence, RunModelledPathProducesSameOutput) {
  const CalcCase& c = GetParam();
  TokenRing ring;
  CalcInput input = BuildInput(c, &ring);
  auto calc = MakeCalculator(c.version);
  PendingRangeCalculator::RunOutcome real = calc->Run(input, /*threshold=*/INT64_MAX);
  PendingRangeCalculator::RunOutcome modelled = calc->Run(input, /*threshold=*/0);
  EXPECT_TRUE(real.executed);
  EXPECT_FALSE(modelled.executed);
  EXPECT_EQ(real.pending, modelled.pending);
  EXPECT_GT(modelled.work, 0);
}

std::vector<CalcCase> AllCases() {
  std::vector<CalcCase> cases;
  for (CalcVersion version :
       {CalcVersion::kReference, CalcVersion::kV1PreC3831, CalcVersion::kV2C3831Fix,
        CalcVersion::kV3C3881Fix, CalcVersion::kBootstrapC6127}) {
    // Tolerances: V1/V2 counting is near-exact; V3's walk lengths and the
    // bootstrap path's insert scans are approximated.
    double tol = 0.25;
    if (version == CalcVersion::kV3C3881Fix) {
      tol = 0.5;
    }
    if (version == CalcVersion::kBootstrapC6127 || version == CalcVersion::kReference) {
      tol = 0.6;
    }
    for (auto [n, p] : {std::pair{4, 1}, {9, 1}, {16, 1}, {6, 4}, {12, 8}}) {
      cases.push_back({version, n, p, 1, 0, tol});   // one leaving
      cases.push_back({version, n, p, 0, 1, tol});   // one joining
      cases.push_back({version, n, p, 2, 2, tol});   // mixed churn
      cases.push_back({version, n, p, 0, 3, tol});   // multi-join
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Generations, CalculatorEquivalence,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(CalculatorEdgeCases, EmptyRingFreshBootstrap) {
  TokenRing empty;
  CalcInput input;
  input.ring = &empty;
  input.rf = 3;
  for (NodeId id = 0; id < 6; ++id) {
    input.changes.push_back(
        PendingChange{id, ChangeKind::kJoining, GenerateTokens(id, 4, 7)});
  }
  CalcResult expected = ComputeReferencePendingRanges(input);
  EXPECT_FALSE(expected.pending.empty());
  for (CalcVersion version :
       {CalcVersion::kV1PreC3831, CalcVersion::kV2C3831Fix, CalcVersion::kV3C3881Fix,
        CalcVersion::kBootstrapC6127}) {
    auto calc = MakeCalculator(version);
    EXPECT_EQ(calc->Execute(input).pending, expected.pending) << calc->name();
  }
}

TEST(CalculatorEdgeCases, NoChangesMeansNoPendingRanges) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {200});
  ring.AddNode(3, {300});
  CalcInput input;
  input.ring = &ring;
  input.rf = 2;
  for (CalcVersion version :
       {CalcVersion::kReference, CalcVersion::kV3C3881Fix,
        CalcVersion::kBootstrapC6127}) {
    auto calc = MakeCalculator(version);
    EXPECT_TRUE(calc->Execute(input).pending.empty()) << calc->name();
  }
}

TEST(CalculatorEdgeCases, LeavingUnknownNodeIsIgnored) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {200});
  ring.AddNode(3, {300});
  CalcInput input;
  input.ring = &ring;
  input.rf = 2;
  input.changes.push_back(PendingChange{99, ChangeKind::kLeaving, {}});
  CalcResult expected = ComputeReferencePendingRanges(input);
  for (CalcVersion version : {CalcVersion::kV1PreC3831, CalcVersion::kV3C3881Fix}) {
    auto calc = MakeCalculator(version);
    EXPECT_EQ(calc->Execute(input).pending, expected.pending) << calc->name();
  }
}

TEST(CalculatorEdgeCases, WholeClusterLeavingButRfSurvivors) {
  TokenRing ring;
  for (NodeId id = 0; id < 8; ++id) {
    ring.AddNode(id, GenerateTokens(id, 2, 55));
  }
  CalcInput input;
  input.ring = &ring;
  input.rf = 3;
  for (NodeId id = 3; id < 8; ++id) {
    input.changes.push_back(PendingChange{id, ChangeKind::kLeaving, {}});
  }
  CalcResult expected = ComputeReferencePendingRanges(input);
  EXPECT_FALSE(expected.pending.empty());
  for (CalcVersion version :
       {CalcVersion::kV1PreC3831, CalcVersion::kV2C3831Fix, CalcVersion::kV3C3881Fix,
        CalcVersion::kBootstrapC6127}) {
    auto calc = MakeCalculator(version);
    EXPECT_EQ(calc->Execute(input).pending, expected.pending) << calc->name();
  }
}

TEST(CalculatorCostShape, V1GrowsMuchFasterThanV3) {
  auto v1 = MakeCalculator(CalcVersion::kV1PreC3831);
  auto v3 = MakeCalculator(CalcVersion::kV3C3881Fix);
  auto ops_at = [&](PendingRangeCalculator* calc, int n) {
    TokenRing ring;
    CalcCase c{calc->version(), n, 1, 1, 0, 0};
    CalcInput input = BuildInput(c, &ring);
    return calc->ModelOps(input);
  };
  double v1_growth = static_cast<double>(ops_at(v1.get(), 64)) /
                     static_cast<double>(ops_at(v1.get(), 16));
  double v3_growth = static_cast<double>(ops_at(v3.get(), 64)) /
                     static_cast<double>(ops_at(v3.get(), 16));
  // 4x nodes: V1 (cubic-ish) should grow ~64x, V3 (E log E) ~5x.
  EXPECT_GT(v1_growth, 40.0);
  EXPECT_LT(v3_growth, 10.0);
}

TEST(CalcInputDigest, SensitiveToRingAndChanges) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {200});
  CalcInput a;
  a.ring = &ring;
  a.rf = 3;
  a.changes.push_back(PendingChange{1, ChangeKind::kLeaving, {}});
  DigestValue da = a.ComputeDigest();

  CalcInput b = a;
  b.rf = 2;
  EXPECT_NE(b.ComputeDigest(), da);

  CalcInput c = a;
  c.changes[0].kind = ChangeKind::kJoining;
  c.changes[0].tokens = {50};
  EXPECT_NE(c.ComputeDigest(), da);

  TokenRing ring2;
  ring2.AddNode(1, {100});
  ring2.AddNode(2, {201});
  CalcInput d = a;
  d.ring = &ring2;
  EXPECT_NE(d.ComputeDigest(), da);

  // Identical content digests identically.
  CalcInput e = a;
  EXPECT_EQ(e.ComputeDigest(), da);
}

}  // namespace
}  // namespace scalecheck
