#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/dfs/dfs.h"

namespace scalecheck {
namespace {

TEST(NamesTest, RunModes) {
  EXPECT_STREQ(RunModeName(RunMode::kRealScale), "Real");
  EXPECT_STREQ(RunModeName(RunMode::kColocated), "Colo");
  EXPECT_STREQ(RunModeName(RunMode::kMemoize), "Memoize");
  EXPECT_STREQ(RunModeName(RunMode::kPilReplay), "SC+PIL");
}

TEST(NamesTest, CalcPlacements) {
  EXPECT_STREQ(CalcPlacementName(CalcPlacement::kInlineGossipStage),
               "inline-gossip-stage");
  EXPECT_STREQ(CalcPlacementName(CalcPlacement::kSeparateThreadCoarseLock),
               "coarse-lock");
  EXPECT_STREQ(CalcPlacementName(CalcPlacement::kSeparateThreadClone),
               "clone-early-release");
}

TEST(NamesTest, ExecModels) {
  EXPECT_STREQ(ExecModelName(ExecModel::kProcessPerNode), "process-per-node");
  EXPECT_STREQ(ExecModelName(ExecModel::kSedaSingleProcess), "seda-single-process");
}

TEST(NamesTest, Workloads) {
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kSteadyState), "steady-state");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kDecommission), "decommission");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kScaleOut), "scale-out");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kBootstrapFresh), "bootstrap-fresh");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kFailover), "failover");
  EXPECT_STREQ(WorkloadKindName(WorkloadKind::kRebalance), "rebalance");
}

TEST(NamesTest, CalcVersions) {
  EXPECT_STREQ(CalcVersionName(CalcVersion::kReference), "reference");
  EXPECT_STREQ(CalcVersionName(CalcVersion::kV1PreC3831), "v1-pre-C3831");
  EXPECT_STREQ(CalcVersionName(CalcVersion::kV2C3831Fix), "v2-C3831-fix");
  EXPECT_STREQ(CalcVersionName(CalcVersion::kV3C3881Fix), "v3-C3881-fix");
  EXPECT_STREQ(CalcVersionName(CalcVersion::kBootstrapC6127), "bootstrap-C6127");
}

TEST(NamesTest, WorkloadDescribeMentionsEverything) {
  WorkloadSpec wl;
  wl.kind = WorkloadKind::kScaleOut;
  wl.joining_nodes = 16;
  std::string desc = wl.Describe();
  EXPECT_NE(desc.find("scale-out"), std::string::npos);
  EXPECT_NE(desc.find("join=16"), std::string::npos);
}

TEST(NamesTest, ConfigHelpers) {
  ClusterConfig config;
  config.exec_model = ExecModel::kProcessPerNode;
  EXPECT_EQ(config.RuntimeOverheadBytes(), 70LL * 1024 * 1024);
  config.exec_model = ExecModel::kSedaSingleProcess;
  EXPECT_EQ(config.RuntimeOverheadBytes(), 5LL * 1024 * 1024);
  EXPECT_LT(config.CtxSwitchPenalty(), config.machine_spec.ctx_switch_penalty);
}

TEST(NamesTest, RunResultSummaryIsInformative) {
  RunResult r;
  r.mode = RunMode::kPilReplay;
  r.num_nodes = 64;
  r.flaps = 1234;
  std::string summary = r.Summary();
  EXPECT_NE(summary.find("SC+PIL"), std::string::npos);
  EXPECT_NE(summary.find("N=64"), std::string::npos);
  EXPECT_NE(summary.find("flaps=1234"), std::string::npos);
}

}  // namespace
}  // namespace scalecheck
