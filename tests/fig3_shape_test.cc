// The headline result as a regression test (a slow one, ~1-2 min): at 128
// nodes the C3831 symptom is invisible in real-scale testing AND PIL replay,
// while basic colocation already reports a storm — i.e. the left half of
// Figure 3(a). The full 256-node right half lives in bench/fig3a_c3831.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

TEST(Fig3Shape, C3831At128RealQuietColoStormsPilAgrees) {
  ScaleCheckRunner runner(BugCatalog::Get("C3831"));
  ScaleCheckResult r = runner.RunFull(128);

  // Real-scale 128-node testing passes: the bug is latent.
  EXPECT_EQ(r.real.flaps, 0) << r.real.Summary();
  EXPECT_TRUE(r.real.settled);

  // Basic colocation is far off: it reports a storm that real scale refutes.
  EXPECT_GT(r.colo.flaps, 500) << r.colo.Summary();
  EXPECT_GT(r.colo.stage_tasks_dropped, 0u);

  // PIL replay tracks real-scale testing, not the contended memoize run.
  EXPECT_EQ(r.replay.flaps, 0) << r.replay.Summary();
  EXPECT_EQ(r.replay.stage_tasks_dropped, 0u);
  EXPECT_GT(r.replay.pil.replay_hits, 0u);

  // And the offending duration at this scale sits inside the paper's
  // observed 0.001-4s band.
  EXPECT_GT(r.real.calc_duration_seconds.max(), 0.5);
  EXPECT_LT(r.real.calc_duration_seconds.max(), 4.0);
}

}  // namespace
}  // namespace scalecheck
