// Crash-vs-lock interaction: a node that dies mid-calculation must not take
// its SimMutex state with it. Unit tests pin the ResetForCrash contract
// (force-release, waiter drop, epoch-guarded stale grants); the cluster
// tests kill a node while its recalculation is in flight — for every
// CalcPlacement strategy — and check the deployment recovers.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"
#include "src/sim/sync.h"

namespace scalecheck {
namespace {

TEST(SimMutexCrashTest, ResetForcesReleaseAndDropsWaiters) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  mutex.Acquire([] {});
  bool waiter_granted = false;
  mutex.Acquire([&] { waiter_granted = true; });
  ASSERT_TRUE(mutex.locked());
  ASSERT_EQ(mutex.waiters(), 1u);

  mutex.ResetForCrash();
  sim.RunUntilIdle();
  EXPECT_FALSE(mutex.locked());
  EXPECT_EQ(mutex.waiters(), 0u);
  EXPECT_FALSE(waiter_granted);  // the waiter died with the process
  EXPECT_EQ(mutex.crash_releases(), 1u);
}

TEST(SimMutexCrashTest, ResetOfUnheldMutexIsANoOp) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  mutex.ResetForCrash();
  EXPECT_EQ(mutex.crash_releases(), 0u);
  bool granted = false;
  mutex.Acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  mutex.Release();
}

TEST(SimMutexCrashTest, StaleDeferredGrantIsEpochGuarded) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  mutex.Acquire([] {});
  bool waiter_granted = false;
  mutex.Acquire([&] { waiter_granted = true; });
  // Release schedules the waiter's grant as a zero-delay event; the crash
  // lands before that event runs. The stale grant must not re-lock the mutex
  // for a thread that no longer exists.
  mutex.Release();
  mutex.ResetForCrash();
  sim.RunUntilIdle();
  EXPECT_FALSE(waiter_granted);
  EXPECT_FALSE(mutex.locked());
}

TEST(SimMutexCrashTest, UsableAgainAfterReset) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  mutex.Acquire([] {});
  mutex.ResetForCrash();
  std::vector<int> order;
  mutex.Acquire([&] { order.push_back(0); });
  mutex.Acquire([&] { order.push_back(1); });
  mutex.Release();
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  mutex.Release();
}

// Kills `victim` the moment its pending-range recalculation is in flight
// (lock held for the lock-based placements), restarts it 20 virtual seconds
// later, and requires the node to come back NORMAL with its lock free.
// Returns whether the victim's ring lock was held at the instant of death.
bool KillDuringRecalc(const BugSpec& spec) {
  const NodeId victim = 5;  // not a contact (0..2), not the workload target
  Cluster::Options options;
  options.config = spec.MakeConfig(16, RunMode::kRealScale, 42);
  options.workload = spec.MakeWorkload(16);
  Cluster cluster(std::move(options));
  Node* node = cluster.node(victim);

  bool killed = false;
  bool lock_held_at_death = false;
  std::function<void()> poll = [&] {
    if (!killed && (node->recalc_inflight() || node->ring_lock().locked())) {
      killed = true;
      lock_held_at_death = node->ring_lock().locked();
      node->Crash();
      cluster.sim().ScheduleAfter(VirtualDuration::Seconds(20),
                                  [node] { node->Restart({0, 1, 2}); });
      return;
    }
    if (!killed) {
      // Fine-grained so even a short recalc window (small N is fast — that is
      // the paper's point) cannot slip between polls.
      cluster.sim().ScheduleAfter(VirtualDuration::Micros(250), poll);
    }
  };
  cluster.sim().ScheduleAfter(VirtualDuration::Micros(250), poll);

  RunResult result = cluster.Run();
  EXPECT_TRUE(killed) << spec.id << ": recalc never observed in flight";
  EXPECT_FALSE(node->crashed()) << spec.id;
  EXPECT_FALSE(node->ring_lock().locked()) << spec.id;
  EXPECT_EQ(node->my_status(), StatusKind::kNormal) << spec.id;
  EXPECT_TRUE(result.settled) << spec.id << ": " << result.Summary();
  if (lock_held_at_death) {
    EXPECT_EQ(node->ring_lock().crash_releases(), 1u) << spec.id;
  }
  return lock_held_at_death;
}

TEST(ClusterCrashTest, KillDuringInlineStageCalc) {
  // Inline placement never takes the ring lock; this pins the plain
  // crash-while-calculating path.
  KillDuringRecalc(BugCatalog::Get("C3831"));
}

TEST(ClusterCrashTest, KillWhileHoldingCoarseRingLock) {
  // The coarse-lock placement holds the ring lock for the whole calculation
  // (that is bug C5456), so death-during-recalc is death-while-holding.
  bool lock_held = KillDuringRecalc(BugCatalog::Get("C5456"));
  EXPECT_TRUE(lock_held);
}

TEST(ClusterCrashTest, KillDuringCloneLockCalc) {
  // The clone placement holds the lock only for the snapshot; the kill may
  // land inside or outside that window — both must recover.
  KillDuringRecalc(BugCatalog::Get("C5456-fixed"));
}

}  // namespace
}  // namespace scalecheck
