#include <gtest/gtest.h>

#include "src/common/types.h"

namespace scalecheck {
namespace {

TEST(VirtualDuration, FactoriesAndAccessors) {
  EXPECT_EQ(VirtualDuration::Nanos(5).nanos(), 5);
  EXPECT_EQ(VirtualDuration::Micros(3).nanos(), 3000);
  EXPECT_EQ(VirtualDuration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(VirtualDuration::Seconds(1).nanos(), 1000000000);
  EXPECT_EQ(VirtualDuration::Minutes(1).nanos(), 60000000000LL);
  EXPECT_DOUBLE_EQ(VirtualDuration::Seconds(2).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(VirtualDuration::Minutes(3).minutes(), 3.0);
}

TEST(VirtualDuration, Arithmetic) {
  VirtualDuration a = VirtualDuration::Seconds(2);
  VirtualDuration b = VirtualDuration::Millis(500);
  EXPECT_EQ((a + b).millis(), 2500);
  EXPECT_EQ((a - b).millis(), 1500);
  EXPECT_EQ((b * 4).seconds(), 2.0);
  EXPECT_EQ((a / 2).millis(), 1000);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_TRUE((b - a).IsNegative());
  EXPECT_EQ((-b).millis(), -500);
}

TEST(VirtualDuration, FromSecondsFRoundTrips) {
  VirtualDuration d = VirtualDuration::FromSecondsF(1.5);
  EXPECT_EQ(d.millis(), 1500);
  EXPECT_EQ(VirtualDuration::FromSecondsF(0.0).nanos(), 0);
}

TEST(VirtualDuration, Comparisons) {
  EXPECT_LT(VirtualDuration::Millis(1), VirtualDuration::Millis(2));
  EXPECT_EQ(VirtualDuration::Seconds(1), VirtualDuration::Millis(1000));
  EXPECT_TRUE(VirtualDuration::Zero().IsZero());
}

TEST(VirtualDuration, ToStringPicksUnits) {
  EXPECT_EQ(VirtualDuration::Nanos(12).ToString(), "12ns");
  EXPECT_EQ(VirtualDuration::Micros(3).ToString(), "3.000us");
  EXPECT_EQ(VirtualDuration::Millis(7).ToString(), "7.000ms");
  EXPECT_EQ(VirtualDuration::Seconds(2).ToString(), "2.000s");
  EXPECT_EQ(VirtualDuration::Minutes(2).ToString(), "2.00min");
  EXPECT_EQ((-VirtualDuration::Millis(7)).ToString(), "-7.000ms");
}

TEST(VirtualTime, Arithmetic) {
  VirtualTime t = VirtualTime::Zero() + VirtualDuration::Seconds(10);
  EXPECT_EQ(t.nanos(), 10000000000LL);
  VirtualTime u = t + VirtualDuration::Seconds(5);
  EXPECT_EQ((u - t).seconds(), 5.0);
  EXPECT_LT(t, u);
  EXPECT_EQ((t - VirtualDuration::Seconds(10)), VirtualTime::Zero());
}

TEST(VirtualTime, MaxIsLargest) {
  EXPECT_LT(VirtualTime::Zero() + VirtualDuration::Minutes(100000), VirtualTime::Max());
}

}  // namespace
}  // namespace scalecheck
