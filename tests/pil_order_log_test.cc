#include <gtest/gtest.h>

#include <vector>

#include "src/pil/order_log.h"

namespace scalecheck {
namespace {

Message Msg(NodeId from, int type, uint64_t seq) {
  Message m;
  m.from = from;
  m.to = 99;
  m.type = type;
  m.pair_seq = seq;
  return m;
}

TEST(OrderLogTest, AppendsPerNode) {
  OrderLog log;
  log.Append(1, MessageKey{2, 1, 1});
  log.Append(1, MessageKey{3, 1, 1});
  log.Append(2, MessageKey{4, 1, 1});
  EXPECT_EQ(log.SequenceOf(1).size(), 2u);
  EXPECT_EQ(log.SequenceOf(2).size(), 1u);
  EXPECT_TRUE(log.SequenceOf(9).empty());
  EXPECT_EQ(log.TotalEntries(), 3u);
}

TEST(OrderEnforcerTest, ReleasesInRecordedOrder) {
  std::vector<uint64_t> released;
  std::vector<MessageKey> sequence = {{1, 1, 1}, {2, 1, 1}, {1, 1, 2}};
  OrderEnforcer enforcer(sequence, 16,
                         [&](const Message& m) { released.push_back(m.pair_seq * 10 + static_cast<uint64_t>(m.from)); });
  // Arrivals out of order: (1,seq2) first, then (2,seq1), then (1,seq1).
  enforcer.Submit(Msg(1, 1, 2));
  EXPECT_TRUE(released.empty());  // held: expected (1,seq1) first
  enforcer.Submit(Msg(2, 1, 1));
  EXPECT_TRUE(released.empty());
  enforcer.Submit(Msg(1, 1, 1));
  // All three release in recorded order.
  EXPECT_EQ(released, (std::vector<uint64_t>{11, 12, 21}));
  EXPECT_EQ(enforcer.enforced_in_order(), 3u);
  EXPECT_EQ(enforcer.divergences(), 0u);
}

TEST(OrderEnforcerTest, UnloggedMessagesPassThrough) {
  std::vector<NodeId> released;
  OrderEnforcer enforcer({{1, 1, 1}}, 16,
                         [&](const Message& m) { released.push_back(m.from); });
  enforcer.Submit(Msg(7, 7, 7));  // never recorded: no constraint
  EXPECT_EQ(released, std::vector<NodeId>{7});
  EXPECT_EQ(enforcer.divergences(), 0u);
}

TEST(OrderEnforcerTest, BufferOverflowForcesProgress) {
  std::vector<uint64_t> released;
  // Expected first message (from=9) never arrives.
  std::vector<MessageKey> sequence;
  sequence.push_back(MessageKey{9, 1, 1});
  for (uint64_t i = 1; i <= 10; ++i) {
    sequence.push_back(MessageKey{1, 1, i});
  }
  OrderEnforcer enforcer(sequence, /*max_buffer=*/4,
                         [&](const Message& m) { released.push_back(m.pair_seq); });
  for (uint64_t i = 1; i <= 10; ++i) {
    enforcer.Submit(Msg(1, 1, i));
  }
  // Progress was forced; at least the overflowed messages got through.
  EXPECT_FALSE(released.empty());
  EXPECT_GT(enforcer.divergences(), 0u);
  enforcer.Flush();
  EXPECT_EQ(released.size(), 10u);
}

TEST(OrderEnforcerTest, LateMessageAfterSkipCountsDivergence) {
  std::vector<uint64_t> released;
  std::vector<MessageKey> sequence = {{1, 1, 1}, {1, 1, 2}};
  OrderEnforcer enforcer(sequence, 1, [&](const Message& m) {
    released.push_back(m.pair_seq);
  });
  enforcer.Submit(Msg(1, 1, 2));  // buffered (expected seq1)
  // Another early message overflows the 1-slot buffer, forcing seq2 out and
  // the cursor past it.
  enforcer.Submit(Msg(1, 1, 2));  // duplicate key; also early
  enforcer.Submit(Msg(1, 1, 1));  // now behind the cursor
  EXPECT_GE(enforcer.divergences(), 2u);
  EXPECT_EQ(released.size(), 3u);
}

TEST(OrderEnforcerTest, EmptyLogIsPassThrough) {
  std::vector<uint64_t> released;
  OrderEnforcer enforcer({}, 16, [&](const Message& m) { released.push_back(m.pair_seq); });
  for (uint64_t i = 5; i > 0; --i) {
    enforcer.Submit(Msg(1, 1, i));
  }
  EXPECT_EQ(released.size(), 5u);
  EXPECT_EQ(released[0], 5u);  // arrival order preserved
}

TEST(OrderEnforcerTest, FlushDrainsBuffer) {
  std::vector<uint64_t> released;
  OrderEnforcer enforcer({{9, 1, 1}, {1, 1, 1}}, 16,
                         [&](const Message& m) { released.push_back(m.pair_seq); });
  enforcer.Submit(Msg(1, 1, 1));  // held behind missing (9,1,1)
  EXPECT_EQ(enforcer.buffered(), 1u);
  enforcer.Flush();
  EXPECT_EQ(enforcer.buffered(), 0u);
  EXPECT_EQ(released.size(), 1u);
}

}  // namespace
}  // namespace scalecheck
