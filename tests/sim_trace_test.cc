#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"
#include "src/sim/trace.h"

namespace scalecheck {
namespace {

VirtualTime At(int64_t s) { return VirtualTime::Zero() + VirtualDuration::Seconds(s); }

TEST(TraceRecorderTest, DigestCoversAllEvents) {
  TraceRecorder a;
  TraceRecorder b;
  a.Record(At(1), TraceKind::kConviction, 1, 2);
  b.Record(At(1), TraceKind::kConviction, 1, 2);
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
  b.Record(At(2), TraceKind::kRescue, 1, 2);
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
  EXPECT_EQ(b.total_events(), 2u);
}

TEST(TraceRecorderTest, DigestSensitiveToFields) {
  auto digest_of = [](TraceKind kind, NodeId node, NodeId peer, int64_t detail) {
    TraceRecorder t;
    t.Record(At(1), kind, node, peer, detail);
    return t.ComputeDigest();
  };
  DigestValue base = digest_of(TraceKind::kConviction, 1, 2, 0);
  EXPECT_NE(digest_of(TraceKind::kRescue, 1, 2, 0), base);
  EXPECT_NE(digest_of(TraceKind::kConviction, 3, 2, 0), base);
  EXPECT_NE(digest_of(TraceKind::kConviction, 1, 3, 0), base);
  EXPECT_NE(digest_of(TraceKind::kConviction, 1, 2, 9), base);
}

TEST(TraceRecorderTest, TailIsBoundedButDigestIsNot) {
  TraceRecorder small(/*tail_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    small.Record(At(i), TraceKind::kCustom, i);
  }
  EXPECT_EQ(small.Tail().size(), 4u);
  EXPECT_EQ(small.Tail().front().node, 6);  // oldest retained
  EXPECT_EQ(small.total_events(), 10u);
}

TEST(TraceRecorderTest, DumpTailRenders) {
  TraceRecorder t;
  t.Record(At(1), TraceKind::kStatusChange, 3, 4, 2, "LEAVING");
  std::string dump = t.DumpTail();
  EXPECT_NE(dump.find("status"), std::string::npos);
  EXPECT_NE(dump.find("n3"), std::string::npos);
  EXPECT_NE(dump.find("LEAVING"), std::string::npos);
}

TEST(TraceRecorderTest, ClearResets) {
  TraceRecorder t;
  t.Record(At(1), TraceKind::kCustom, 1);
  DigestValue with_one = t.ComputeDigest();
  t.Clear();
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_NE(t.ComputeDigest(), with_one);
}

// The property the scale-check scheme leans on: identical configuration =>
// byte-identical behaviour, witnessed by the trace digest over every
// status change, conviction, rescue, calc, and crash in the run.
TEST(ClusterTraceDeterminism, SameSeedSameTraceDigest) {
  auto run_digest = [] {
    BugSpec spec = BugCatalog::Get("C3831");
    Cluster::Options options;
    options.config = spec.MakeConfig(12, RunMode::kRealScale, 77);
    options.workload = spec.MakeWorkload(12);
    options.enable_trace = true;
    Cluster cluster(std::move(options));
    cluster.Run();
    return cluster.trace()->ComputeDigest();
  };
  DigestValue first = run_digest();
  DigestValue second = run_digest();
  EXPECT_EQ(first, second);
}

TEST(ClusterTraceDeterminism, DifferentSeedDifferentTrace) {
  auto run_digest = [](uint64_t seed) {
    BugSpec spec = BugCatalog::Get("C3831");
    Cluster::Options options;
    options.config = spec.MakeConfig(12, RunMode::kRealScale, seed);
    options.workload = spec.MakeWorkload(12);
    options.enable_trace = true;
    Cluster cluster(std::move(options));
    cluster.Run();
    return cluster.trace()->ComputeDigest();
  };
  EXPECT_NE(run_digest(77), run_digest(78));
}

}  // namespace
}  // namespace scalecheck
