// Coverage for smaller API surfaces: gossiper membership management, the
// sfind work profile, and result summaries.

#include <gtest/gtest.h>

#include "src/dfs/dfs.h"
#include "src/gossip/gossiper.h"
#include "src/sfind/profile.h"

namespace scalecheck {
namespace {

TEST(GossiperMembership, RemoveEndpointForgetsState) {
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(2, EndpointState(1));
  g.AddKnownEndpoint(3, EndpointState(1));
  EXPECT_EQ(g.AllEndpoints().size(), 2u);
  g.RemoveEndpoint(2);
  EXPECT_EQ(g.AllEndpoints(), std::vector<NodeId>{3});
  EXPECT_EQ(g.StateOf(2), nullptr);
  EXPECT_FALSE(g.IsAlive(2));
}

TEST(GossiperMembership, LiveEndpointsTracksMarks) {
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(2, EndpointState(1));
  g.AddKnownEndpoint(3, EndpointState(1));
  EXPECT_EQ(g.LiveEndpoints().size(), 2u);
  g.MarkDead(2);
  EXPECT_EQ(g.LiveEndpoints(), std::vector<NodeId>{3});
  g.MarkAlive(2);
  EXPECT_EQ(g.LiveEndpoints().size(), 2u);
  // Self never appears.
  for (NodeId ep : g.LiveEndpoints()) {
    EXPECT_NE(ep, 1);
  }
}

TEST(GossiperMembership, DigestsCoverAllKnownEndpoints) {
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(5, EndpointState(1));
  std::vector<GossipDigest> digests = g.MakeSynDigests();
  ASSERT_EQ(digests.size(), 2u);  // self + peer
  EXPECT_EQ(digests[0].endpoint, 1);
  EXPECT_EQ(digests[1].endpoint, 5);
}

TEST(WorkProfileTest, RecordsAndAggregates) {
  WorkProfile profile;
  profile.Record(1, 8, 100);
  profile.Record(1, 8, 300);
  profile.Record(1, 16, 900);
  profile.Record(2, 8, 50);

  const WorkProfile::Cell* cell = profile.Find(1, 8);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->invocations, 2);
  EXPECT_EQ(cell->total_ops, 400);
  EXPECT_EQ(cell->max_ops, 300);
  EXPECT_EQ(profile.Find(1, 99), nullptr);
  EXPECT_EQ(profile.Find(9, 8), nullptr);
  EXPECT_EQ(profile.cells().size(), 2u);
}

TEST(DfsResultTest, SummaryMentionsKeyFields) {
  DfsResult r;
  r.datanodes = 42;
  r.dead_marks = 7;
  r.stabilized = true;
  std::string summary = r.Summary();
  EXPECT_NE(summary.find("N=42"), std::string::npos);
  EXPECT_NE(summary.find("dead_marks=7"), std::string::npos);
  // Unstable runs get flagged.
  r.stabilized = false;
  EXPECT_NE(r.Summary().find("(!)"), std::string::npos);
}

}  // namespace
}  // namespace scalecheck
