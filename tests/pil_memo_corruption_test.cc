// Damage-model tests for the v2 memo-DB format: every single-bit flip and
// every truncation point must surface as a structured load error — a damaged
// DB silently loading as a plausible-but-wrong store would poison every
// replay built on it (the paper's "replay numerous times" workflow makes the
// DB the long-lived artifact, so it gets the integrity budget).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/pil/memo_store.h"

namespace scalecheck {
namespace {

DigestValue Key(uint64_t x) { return DigestValue{x, x * 31}; }

MemoRecord Record(std::vector<uint8_t> output, int64_t work) {
  MemoRecord r;
  r.output = std::move(output);
  r.work = work;
  r.cpu_duration = VirtualDuration::Nanos(work);
  return r;
}

MemoStore SampleStore() {
  MemoStore store;
  store.Put(1, Key(1), Record({1, 2, 3, 4}, 111));
  store.Put(2, Key(2), Record({}, 222));  // empty output: tests the length edge
  store.Put(3, Key(3), Record({0xde, 0xad, 0xbe, 0xef, 0x00}, 333));
  return store;
}

bool IsDamageStatus(StatusCode code) {
  return code == StatusCode::kCorruptData || code == StatusCode::kTruncated ||
         code == StatusCode::kVersionSkew;
}

TEST(MemoCorruptionTest, EveryBitFlipIsDetected) {
  const std::vector<uint8_t> good = SampleStore().Serialize();
  for (size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = good;
      bad[byte] ^= static_cast<uint8_t>(1u << bit);
      MemoStore out;
      Status status = MemoStore::Parse(bad, &out);
      ASSERT_FALSE(status.ok())
          << "flip of byte " << byte << " bit " << bit << " loaded silently";
      ASSERT_TRUE(IsDamageStatus(status.code()))
          << "flip of byte " << byte << " bit " << bit
          << " produced unexpected status " << status.ToString();
      // A failed parse must never leave partial records behind.
      ASSERT_EQ(out.size(), 0u);
    }
  }
}

TEST(MemoCorruptionTest, EveryTruncationIsReportedAsTruncated) {
  const std::vector<uint8_t> good = SampleStore().Serialize();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + static_cast<ptrdiff_t>(len));
    MemoStore out;
    Status status = MemoStore::Parse(cut, &out);
    ASSERT_FALSE(status.ok()) << "prefix of " << len << " bytes loaded silently";
    ASSERT_EQ(status.code(), StatusCode::kTruncated)
        << "prefix of " << len << " bytes misclassified as " << status.ToString();
    ASSERT_EQ(out.size(), 0u);
  }
}

TEST(MemoCorruptionTest, TrailingGarbageIsCorruptNotTruncated) {
  std::vector<uint8_t> bytes = SampleStore().Serialize();
  bytes.push_back(0x00);
  MemoStore out;
  EXPECT_EQ(MemoStore::Parse(bytes, &out).code(), StatusCode::kCorruptData);
}

TEST(MemoCorruptionTest, V1MagicIsVersionSkew) {
  // A v1 store begins "SCPMEMO1"; the v2 reader must name the mismatch as
  // version skew (re-memoize), not lump it in with bit rot. Serialize()
  // writes the magic via memcpy of a host-endian u64, so build the v1 bytes
  // the same way: take a real v2 stream and rewrite the magic's '2' to '1'.
  std::vector<uint8_t> v1 = SampleStore().Serialize();
  for (size_t i = 0; i < sizeof(uint64_t); ++i) {
    if (v1[i] == '2') {
      v1[i] = '1';
    }
  }
  MemoStore out;
  EXPECT_EQ(MemoStore::Parse(v1, &out).code(), StatusCode::kVersionSkew);
}

TEST(MemoCorruptionTest, FutureVersionIsVersionSkew) {
  // Valid v2 magic but a version field from the future: skew, and reported
  // before any checksum noise.
  std::vector<uint8_t> bytes = SampleStore().Serialize();
  bytes[sizeof(uint64_t)] = 3;  // version u32 little end lives right after magic
  MemoStore out;
  Status status = MemoStore::Parse(bytes, &out);
  EXPECT_EQ(status.code(), StatusCode::kVersionSkew);
  EXPECT_NE(status.message().find("v3"), std::string::npos) << status.ToString();
}

TEST(MemoCorruptionTest, LoadMapsStatusAndNamesThePath) {
  const std::string path = "/tmp/scalecheck_memo_corruption_load.bin";
  std::vector<uint8_t> bytes = SampleStore().Serialize();
  bytes[bytes.size() - 1] ^= 0xff;  // break the last record's CRC
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);

  Result<MemoStore> loaded = MemoStore::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  std::remove(path.c_str());

  EXPECT_EQ(MemoStore::Load("/tmp/scalecheck_no_such_memo.bin").status().code(),
            StatusCode::kNotFound);
}

TEST(MemoCorruptionTest, CrashedSaveLeavesPreviousStoreLoadable) {
  const std::string path = "/tmp/scalecheck_memo_crash_save.bin";
  std::remove(path.c_str());
  std::remove(MemoStore::TempPathFor(path).c_str());

  MemoStore first;
  first.Put(1, Key(10), Record({7, 7, 7}, 10));
  ASSERT_TRUE(first.Save(path).ok());

  // Simulate a crash mid-way through saving a second store: the temp file
  // holds a torn prefix and the rename never happened.
  MemoStore second;
  second.Put(2, Key(20), Record({8, 8, 8, 8}, 20));
  std::vector<uint8_t> partial = second.Serialize();
  partial.resize(partial.size() / 2);
  std::FILE* f = std::fopen(MemoStore::TempPathFor(path).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(partial.data(), 1, partial.size(), f);
  std::fclose(f);

  // The destination still holds the complete first store.
  Result<MemoStore> recovered = MemoStore::Load(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().size(), 1u);
  EXPECT_NE(recovered.value().Peek(1, Key(10)), nullptr);
  // And the torn temp file itself is detectably truncated, not loadable.
  EXPECT_EQ(MemoStore::Load(MemoStore::TempPathFor(path)).status().code(),
            StatusCode::kTruncated);

  // A retry of the save goes through and replaces the DB atomically.
  ASSERT_TRUE(second.Save(path).ok());
  Result<MemoStore> replaced = MemoStore::Load(path);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value().size(), 1u);
  EXPECT_NE(replaced.value().Peek(2, Key(20)), nullptr);

  std::remove(path.c_str());
  std::remove(MemoStore::TempPathFor(path).c_str());
}

TEST(MemoCorruptionTest, RoundTripSurvivesSaveLoad) {
  const std::string path = "/tmp/scalecheck_memo_roundtrip_v2.bin";
  MemoStore store = SampleStore();
  ASSERT_TRUE(store.Save(path).ok());
  Result<MemoStore> loaded = MemoStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), store.size());
  EXPECT_EQ(loaded.value().output_bytes(), store.output_bytes());
  const MemoRecord* rec = loaded.value().Peek(1, Key(1));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->output, (std::vector<uint8_t>{1, 2, 3, 4}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scalecheck
