#include <gtest/gtest.h>

#include "src/sim/machine.h"

namespace scalecheck {
namespace {

TEST(MachineSpecTest, NomeMatchesThePaperTestbed) {
  // §8: "16-core AMD Opteron(tm) 8454 processors with 32-GB DRAM".
  MachineSpec nome = MachineSpec::Nome();
  EXPECT_DOUBLE_EQ(nome.cores, 16.0);
  EXPECT_EQ(nome.memory_bytes, 32LL * 1024 * 1024 * 1024);
}

TEST(MachineSetTest, PlacementRoundRobins) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 4);
  // 8 nodes per machine, paper-style.
  for (NodeId id = 0; id < 32; ++id) {
    machines.Place(id, 8);
  }
  EXPECT_EQ(machines.MachineOf(0)->id(), 0);
  EXPECT_EQ(machines.MachineOf(7)->id(), 0);
  EXPECT_EQ(machines.MachineOf(8)->id(), 1);
  EXPECT_EQ(machines.MachineOf(31)->id(), 3);
  EXPECT_TRUE(machines.SameMachine(0, 7));
  EXPECT_FALSE(machines.SameMachine(7, 8));
}

TEST(MachineSetTest, SingleMachineColocatesEverything) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 1);
  for (NodeId id = 0; id < 100; ++id) {
    machines.Place(id, 100);
  }
  EXPECT_TRUE(machines.SameMachine(0, 99));
}

TEST(MachineSetTest, UnplacedNodeDies) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 1);
  EXPECT_DEATH(machines.MachineOf(5), "unplaced");
}

TEST(MachineSetTest, AggregatesAcrossMachines) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 2);
  machines.at(0).memory().Allocate(1, "x", 1000);
  machines.at(1).memory().Allocate(2, "x", 2000);
  EXPECT_EQ(machines.TotalPeakMemory(), 3000);
  machines.at(0).cpu().StartTask(1'000'000'000, [] {});
  sim.RunUntilIdle();
  EXPECT_GT(machines.MaxUtilization(), 0.0);
}

TEST(LatenessTrackerTest, RecordsPositiveLatenessOnly) {
  LatenessTracker tracker;
  VirtualTime t0 = VirtualTime::Zero() + VirtualDuration::Seconds(10);
  tracker.Record(t0, t0 + VirtualDuration::Seconds(2));  // 2s late
  tracker.Record(t0, t0);                                // on time
  tracker.Record(t0 + VirtualDuration::Seconds(1), t0);  // "early" clamps to 0
  EXPECT_EQ(tracker.count(), 3);
  EXPECT_GE(tracker.max().seconds(), 1.9);
  EXPECT_LE(tracker.p50().seconds(), 0.01);
}

}  // namespace
}  // namespace scalecheck
