// The reusable worker pool under the ExperimentSuite executor.

#include "src/common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace scalecheck {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleCoversTasksSubmittedByTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, NonPositiveThreadCountSelectsHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, TasksSpreadAcrossWorkers) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> workers;
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&mu, &workers] {
      std::lock_guard<std::mutex> lock(mu);
      workers.insert(std::this_thread::get_id());
    });
  }
  pool.WaitIdle();
  // All work happened on pool threads (1..4 of them; scheduling decides how
  // many actually woke up, and a single-core host may use just one).
  EXPECT_GE(workers.size(), 1u);
  EXPECT_LE(workers.size(), 4u);
  EXPECT_EQ(workers.count(std::this_thread::get_id()), 0u);
}

}  // namespace
}  // namespace scalecheck
