// KV data path riding on a live cluster.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/kv/kv_service.h"

namespace scalecheck {
namespace {

Cluster::Options KvCluster(int n, WorkloadKind kind = WorkloadKind::kSteadyState) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.run_mode = RunMode::kRealScale;
  config.enable_kv = true;
  config.seed = 31337;
  WorkloadSpec wl;
  wl.kind = kind;
  wl.target = n / 2;
  wl.horizon = VirtualDuration::Seconds(120);
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

TEST(KvClusterTest, WriteThenReadRoundTrips) {
  Cluster cluster(KvCluster(8));
  KvOutcome write_outcome = KvOutcome::kTimeout;
  KvOutcome read_outcome = KvOutcome::kTimeout;
  std::string read_value;

  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    cluster.node(0)->kv()->Write(777, "the-value", [&](KvOutcome o, std::string) {
      write_outcome = o;
      // Read from a different coordinator once the write finished.
      cluster.node(3)->kv()->Read(777, [&](KvOutcome ro, std::string v) {
        read_outcome = ro;
        read_value = std::move(v);
      });
    });
  });
  cluster.Run();
  EXPECT_EQ(write_outcome, KvOutcome::kOk);
  EXPECT_EQ(read_outcome, KvOutcome::kOk);
  EXPECT_EQ(read_value, "the-value");
}

TEST(KvClusterTest, ReadOfAbsentKeyIsOkAndEmpty) {
  Cluster cluster(KvCluster(8));
  KvOutcome outcome = KvOutcome::kTimeout;
  std::string value = "sentinel";
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    cluster.node(1)->kv()->Read(424242, [&](KvOutcome o, std::string v) {
      outcome = o;
      value = std::move(v);
    });
  });
  cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  EXPECT_TRUE(value.empty());
}

TEST(KvClusterTest, QuorumSurvivesOneReplicaCrash) {
  Cluster cluster(KvCluster(8));
  KvOutcome outcome = KvOutcome::kUnavailable;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    // Find the replicas of key 99 and crash one of them.
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(99), 3);
    ASSERT_EQ(replicas.size(), 3u);
    NodeId victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    cluster.node(victim)->Crash();
    cluster.node(0)->kv()->Write(99, "v", [&](KvOutcome o, std::string) {
      outcome = o;
    });
  });
  cluster.Run();
  // 2 of 3 replicas up: the write reaches quorum (possibly after acking from
  // the live pair while the request to the dead one is dropped).
  EXPECT_EQ(outcome, KvOutcome::kOk);
}

TEST(KvClusterTest, UnavailableWhenCoordinatorConvictedReplicas) {
  Cluster cluster(KvCluster(8));
  KvOutcome outcome = KvOutcome::kOk;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    // Simulate the flap-storm effect directly: the coordinator's liveness
    // view marks two replicas of the key dead (even though they are fine).
    Node* coordinator = cluster.node(0);
    std::vector<NodeId> replicas =
      coordinator->ring().NaturalEndpointsForKey(KvTokenForKey(99), 3);
    int marked = 0;
    for (NodeId replica : replicas) {
      if (replica != 0 && marked < 2) {
        // Reach in via the gossiper the coordinator consults.
        const_cast<Gossiper&>(coordinator->gossiper()).MarkDead(replica);
        ++marked;
      }
    }
    ASSERT_GE(marked, 2);
    coordinator->kv()->Write(99, "v", [&](KvOutcome o, std::string) { outcome = o; });
  });
  cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kUnavailable);
}

TEST(KvClusterTest, QuorumReadReturnsNewestVersion) {
  // Write twice through different coordinators; the read must resolve to the
  // newest version even if a stale replica answers first.
  Cluster cluster(KvCluster(8));
  std::string read_value;
  KvOutcome read_outcome = KvOutcome::kTimeout;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    cluster.node(0)->kv()->Write(555, "first", [&](KvOutcome, std::string) {
      cluster.node(0)->kv()->Write(555, "second", [&](KvOutcome, std::string) {
        cluster.node(5)->kv()->Read(555, [&](KvOutcome o, std::string v) {
          read_outcome = o;
          read_value = std::move(v);
        });
      });
    });
  });
  cluster.Run();
  EXPECT_EQ(read_outcome, KvOutcome::kOk);
  EXPECT_EQ(read_value, "second");
}

TEST(KvClusterTest, StorageTimestampsTrackVersions) {
  StorageEngine engine;
  EXPECT_EQ(engine.TimestampOf(1), 0);
  engine.Put(1, "a", 5);
  EXPECT_EQ(engine.TimestampOf(1), 5);
  engine.Put(1, "b", 9);
  EXPECT_EQ(engine.TimestampOf(1), 9);
}

TEST(KvClusterTest, LoadDriverAggregatesIntoRunResult) {
  Cluster::Options options = KvCluster(8);
  options.kv_ops_per_second = 50;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  int64_t total = r.kv_ok + r.kv_unavailable + r.kv_timeout;
  EXPECT_GT(total, 1000);
  EXPECT_EQ(r.kv_unavailable, 0);  // steady state
  EXPECT_EQ(r.kv_timeout, 0);
  EXPECT_GT(r.kv_latency_p99.nanos(), 0);
  EXPECT_LT(r.kv_latency_p99, VirtualDuration::Millis(100));
}

TEST(KvClusterTest, StorageStateAccumulates) {
  Cluster::Options options = KvCluster(8);
  options.kv_ops_per_second = 100;
  Cluster cluster(std::move(options));
  cluster.Run();
  int64_t total_entries = 0;
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    total_entries += cluster.node(static_cast<NodeId>(i))->kv()->storage().total_entries();
  }
  EXPECT_GT(total_entries, 100);  // writes landed in storage engines
}

}  // namespace
}  // namespace scalecheck
