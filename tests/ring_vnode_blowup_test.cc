// The C3881 mechanism as a property: the SAME calculator that is fine with
// one token per node explodes when vnodes multiply the entry count — "the
// fix above did not scale as N becomes N*P" (§2).

#include <gtest/gtest.h>

#include "src/ring/calculators.h"

namespace scalecheck {
namespace {

int64_t V2OpsAt(int n, int p) {
  TokenRing ring;
  for (NodeId id = 0; id < n; ++id) {
    ring.AddNode(id, GenerateTokens(id, p, 3));
  }
  CalcInput input;
  input.ring = &ring;
  input.rf = 3;
  input.changes.push_back(
      PendingChange{n, ChangeKind::kJoining, GenerateTokens(n, p, 3)});
  return MakeCalculator(CalcVersion::kV2C3831Fix)->ModelOps(input);
}

TEST(VnodeBlowup, VnodesMultiplyV2CostQuadratically) {
  int64_t p1 = V2OpsAt(64, 1);
  int64_t p8 = V2OpsAt(64, 8);
  int64_t p32 = V2OpsAt(64, 32);
  // E grows 8x and 32x; the quadratic term must grow ~64x and ~1000x
  // (slightly more with the log factor).
  EXPECT_GT(p8, p1 * 50);
  EXPECT_GT(p32, p1 * 700);
}

TEST(VnodeBlowup, VnodesAtSmallNMatchPlainLargeN) {
  // The bug's arithmetic: 32 nodes x 8 vnodes ~ 256 plain entries. The V2
  // cost is driven by E, so these must be within a small factor.
  int64_t vnodes = V2OpsAt(32, 8);
  int64_t plain = V2OpsAt(256, 1);
  double ratio = static_cast<double>(vnodes) / static_cast<double>(plain);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(VnodeBlowup, V3IsVnodeAware) {
  // The C3881 fix: V3's cost grows ~linearly in E, not quadratically.
  auto v3_ops = [](int n, int p) {
    TokenRing ring;
    for (NodeId id = 0; id < n; ++id) {
      ring.AddNode(id, GenerateTokens(id, p, 3));
    }
    CalcInput input;
    input.ring = &ring;
    input.rf = 3;
    input.changes.push_back(
        PendingChange{n, ChangeKind::kJoining, GenerateTokens(n, p, 3)});
    return MakeCalculator(CalcVersion::kV3C3881Fix)->ModelOps(input);
  };
  int64_t p1 = v3_ops(64, 1);
  int64_t p32 = v3_ops(64, 32);
  // E grew 32x; V3 should grow ~32-80x (E log E plus per-token walks), far
  // from V2's ~1000x.
  EXPECT_LT(p32, p1 * 150);
}

}  // namespace
}  // namespace scalecheck
