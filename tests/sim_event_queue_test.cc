#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"

namespace scalecheck {
namespace {

VirtualTime At(int64_t ms) { return VirtualTime::Zero() + VirtualDuration::Millis(ms); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(At(30), [&] { order.push_back(3); });
  q.Schedule(At(10), [&] { order.push_back(1); });
  q.Schedule(At(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(At(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(At(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(At(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  EventId id = q.Schedule(At(1), [] {});
  VirtualTime t;
  q.Pop(&t)();
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEvent));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelledEntriesSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.Schedule(At(1), [&] { order.push_back(1); });
  q.Schedule(At(2), [&] { order.push_back(2); });
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), At(2));
  VirtualTime t;
  q.Pop(&t)();
  EXPECT_EQ(order, std::vector<int>{2});
}

// Regression: the old lazy-cancel design kept cancelled entries (and the
// closures they captured) inside the priority queue until they reached the
// top. A true cancel must release captured state immediately.
TEST(EventQueue, CancelReleasesClosureImmediately) {
  EventQueue q;
  auto payload = std::make_shared<int>(7);
  EventId id = q.Schedule(At(1000), [payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  EXPECT_TRUE(q.Cancel(id));
  // The closure — and its capture — is gone even though the queue lives on
  // and the cancelled entry's slot may be reused later.
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueue, DestroyingQueueReleasesPendingClosures) {
  auto payload = std::make_shared<int>(7);
  {
    EventQueue q;
    q.Schedule(At(1), [payload] { (void)*payload; });
    q.Schedule(At(2), [payload] { (void)*payload; });
    EXPECT_EQ(payload.use_count(), 3);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueue, CancelledSlotIsReusedWithoutDisturbingSurvivors) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.Schedule(At(10), [&] { order.push_back(10); });
  q.Schedule(At(20), [&] { order.push_back(20); });
  q.Cancel(a);
  // This schedule should land in the freed slot; the surviving event must
  // still fire with its own callback.
  q.Schedule(At(5), [&] { order.push_back(5); });
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{5, 20}));
}

// Callbacks may own move-only state: compile-time proof that the engine never
// copies a callback between Schedule and execution.
TEST(EventQueue, CallbacksMayBeMoveOnly) {
  EventQueue q;
  auto owned = std::make_unique<int>(41);
  int got = 0;
  q.Schedule(At(1), [owned = std::move(owned), &got] { got = *owned + 1; });
  VirtualTime t;
  EventFn fn = q.Pop(&t);
  fn();
  EXPECT_EQ(got, 42);
}

// Runtime proof of the same: a copy-instrumented callable must report zero
// copies through a schedule → pop → invoke round trip.
TEST(EventQueue, PopNeverCopiesTheCallback) {
  static int copies;
  copies = 0;
  struct Counted {
    int* sink;
    Counted(int* s) : sink(s) {}
    Counted(const Counted& o) noexcept : sink(o.sink) { ++copies; }
    Counted(Counted&& o) noexcept : sink(o.sink) {}
    void operator()() { *sink += 1; }
  };
  EventQueue q;
  int fired = 0;
  q.Schedule(At(1), Counted(&fired));
  VirtualTime t;
  q.Pop(&t)();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(copies, 0);
}

TEST(EventQueue, IdsAreMonotoneAndAccounted) {
  EventQueue q;
  EventId prev = kInvalidEvent;
  for (int i = 0; i < 100; ++i) {
    EventId id = q.Schedule(At(i), [] {});
    EXPECT_GT(id, prev);
    prev = id;
  }
  EXPECT_EQ(q.total_scheduled(), 100u);
  EXPECT_EQ(q.total_cancelled(), 0u);
  // Cancel every other event; accounting must track exactly the successes.
  uint64_t cancelled = 0;
  for (EventId id = 2; id <= prev; id += 2) {
    EXPECT_TRUE(q.Cancel(id));
    ++cancelled;
  }
  EXPECT_EQ(q.total_cancelled(), cancelled);
  EXPECT_EQ(q.size(), 100u - cancelled);
  // Failed cancels (already cancelled / already popped) don't count.
  EXPECT_FALSE(q.Cancel(2));
  EXPECT_EQ(q.total_cancelled(), cancelled);
  uint64_t popped = 0;
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t);
    ++popped;
  }
  EXPECT_EQ(popped + cancelled, q.total_scheduled());
}

TEST(EventQueue, CancelOfPoppedIdReturnsFalse) {
  EventQueue q;
  EventId a = q.Schedule(At(1), [] {});
  EventId b = q.Schedule(At(2), [] {});
  VirtualTime t;
  q.Pop(&t);
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_TRUE(q.Cancel(b));
  EXPECT_FALSE(q.Cancel(b));
}

TEST(EventQueue, SlotHighWaterTracksPeakOutstanding) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.Schedule(At(i), [] {}));
  }
  EXPECT_GE(q.slot_high_water(), 8u);
  for (EventId id : ids) {
    q.Cancel(id);
  }
  // Slots are recycled: scheduling 8 more must not grow the slab.
  size_t high = q.slot_high_water();
  for (int i = 0; i < 8; ++i) {
    q.Schedule(At(i), [] {});
  }
  EXPECT_EQ(q.slot_high_water(), high);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(At(1), [] {});
  q.Schedule(At(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  VirtualTime t;
  q.Pop(&t);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_scheduled(), 2u);
}

}  // namespace
}  // namespace scalecheck
