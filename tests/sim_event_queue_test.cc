#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace scalecheck {
namespace {

VirtualTime At(int64_t ms) { return VirtualTime::Zero() + VirtualDuration::Millis(ms); }

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(At(30), [&] { order.push_back(3); });
  q.Schedule(At(10), [&] { order.push_back(1); });
  q.Schedule(At(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(At(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    VirtualTime t;
    q.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(At(1), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(At(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  EventId id = q.Schedule(At(1), [] {});
  VirtualTime t;
  q.Pop(&t)();
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEvent));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelledEntriesSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.Schedule(At(1), [&] { order.push_back(1); });
  q.Schedule(At(2), [&] { order.push_back(2); });
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), At(2));
  VirtualTime t;
  q.Pop(&t)();
  EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(At(1), [] {});
  q.Schedule(At(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  VirtualTime t;
  q.Pop(&t);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_scheduled(), 2u);
}

}  // namespace
}  // namespace scalecheck
