// Transport + Clock conformance suite, instantiated against BOTH carriers:
//
//   sim : SimTransport/SimClock over Simulator + NetworkModel, with
//         roundtrip_codec on — every payload passes through the shared wire
//         codec exactly as TCP frames would.
//   tcp : TcpTransport/RealClock — real localhost sockets, real timers.
//
// The protocol layer is written against the seam's contract; this suite IS
// that contract: per-pair FIFO delivery, no delivery after unregister, no
// cross-talk between handlers, timer fire/cancel semantics.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/gossip/messages.h"
#include "src/net/real_clock.h"
#include "src/net/tcp_transport.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_substrate.h"
#include "src/transport/substrate.h"

namespace scalecheck {
namespace {

// A carrier under test. RunUntil lets background machinery (sim events or
// real threads) make progress until `pred` holds or the carrier's patience
// runs out; it returns the final pred() value.
class Carrier {
 public:
  virtual ~Carrier() = default;
  virtual Transport* transport() = 0;
  virtual Clock* clock() = 0;
  virtual bool RunUntil(std::function<bool()> pred) = 0;
  // Lets the carrier run for a short, bounded window — used to give an
  // INCORRECT behavior (late delivery, late timer fire) a chance to happen
  // before asserting it did not.
  virtual void WaitABit() = 0;
  // The clock a PeriodicClockTimer must be built on, plus the mutex callers
  // must hold around Start/Stop and any state the timer fn touches. This is
  // the documented contract: PeriodicClockTimer is not internally
  // thread-safe, so multi-threaded carriers serialize via SerializedClock
  // (exactly what net::RealNode does). The sim leg is single-threaded, so
  // there the mutex is just along for the ride.
  virtual Clock* timer_clock() = 0;
  virtual std::mutex* timer_mu() = 0;
};

class SimCarrier : public Carrier {
 public:
  SimCarrier()
      : sim_(/*seed=*/1234),
        network_(&sim_, NetworkModel::Config{}, /*seed=*/1234),
        transport_(&network_, SimTransport::Options{.roundtrip_codec = true}),
        clock_(&sim_) {}

  Transport* transport() override { return &transport_; }
  Clock* clock() override { return &clock_; }
  bool RunUntil(std::function<bool()> pred) override {
    const VirtualTime deadline = sim_.Now() + VirtualDuration::Seconds(10);
    while (!pred() && sim_.Now() < deadline) {
      sim_.Run(sim_.Now() + VirtualDuration::Millis(1));
    }
    return pred();
  }
  void WaitABit() override {
    sim_.Run(sim_.Now() + VirtualDuration::Millis(200));
  }
  Clock* timer_clock() override { return &clock_; }
  std::mutex* timer_mu() override { return &timer_mu_; }

 private:
  Simulator sim_;
  NetworkModel network_;
  SimTransport transport_;
  SimClock clock_;
  std::mutex timer_mu_;
};

class TcpCarrier : public Carrier {
 public:
  Transport* transport() override { return &transport_; }
  Clock* clock() override { return &clock_; }
  bool RunUntil(std::function<bool()> pred) override {
    for (int spins = 0; spins < 2000; ++spins) {  // up to ~10s wall
      if (pred()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  }
  void WaitABit() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  Clock* timer_clock() override { return &serialized_; }
  std::mutex* timer_mu() override { return &timer_mu_; }

 private:
  TcpTransport transport_;
  RealClock clock_;
  std::mutex timer_mu_;
  SerializedClock serialized_{&clock_, &timer_mu_};
};

std::unique_ptr<Carrier> MakeCarrier(const std::string& name) {
  if (name == "sim") {
    return std::make_unique<SimCarrier>();
  }
  return std::make_unique<TcpCarrier>();
}

// A tagged gossip SYN: the digest generation carries the test's sequence
// marker through encode/decode.
std::shared_ptr<const Payload> Tagged(int64_t marker) {
  auto syn = std::make_shared<SynPayload>();
  syn->digests = {{.endpoint = 1, .generation = marker, .max_version = 0}};
  return syn;
}

int64_t MarkerOf(const Message& msg) {
  auto* syn = static_cast<const SynPayload*>(msg.payload.get());
  return syn->digests.empty() ? -1 : syn->digests[0].generation;
}

// Thread-safe capture for handler invocations (TCP handlers run on reader
// threads; the sim is single-threaded but the lock is harmless there).
struct Inbox {
  std::mutex mu;
  std::vector<Message> received;

  Transport::Handler HandlerFn() {
    return [this](const Message& msg) {
      std::lock_guard<std::mutex> lock(mu);
      received.push_back(msg);
    };
  }
  size_t Size() {
    std::lock_guard<std::mutex> lock(mu);
    return received.size();
  }
  Message At(size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return received[i];
  }
};

class TransportConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(TransportConformance, DeliversWithHeaderAndPayloadIntact) {
  auto carrier = MakeCarrier(GetParam());
  Inbox a, b;
  carrier->transport()->RegisterNode(1, a.HandlerFn());
  carrier->transport()->RegisterNode(2, b.HandlerFn());
  uint64_t id = carrier->transport()->Send(1, 2, kGossipSyn, Tagged(777));
  EXPECT_NE(id, 0u);
  ASSERT_TRUE(carrier->RunUntil([&] { return b.Size() >= 1; }));
  Message got = b.At(0);
  EXPECT_EQ(got.from, 1);
  EXPECT_EQ(got.to, 2);
  EXPECT_EQ(got.type, kGossipSyn);
  EXPECT_EQ(MarkerOf(got), 777);
  EXPECT_EQ(a.Size(), 0u);  // sender got nothing back
  carrier->transport()->UnregisterNode(1);
  carrier->transport()->UnregisterNode(2);
}

TEST_P(TransportConformance, PerPairDeliveryIsFifo) {
  auto carrier = MakeCarrier(GetParam());
  Inbox b;
  carrier->transport()->RegisterNode(1, Transport::Handler([](const Message&) {}));
  carrier->transport()->RegisterNode(2, b.HandlerFn());
  carrier->transport()->RegisterNode(3, Transport::Handler([](const Message&) {}));
  constexpr int kCount = 40;
  for (int i = 0; i < kCount; ++i) {
    carrier->transport()->Send(1, 2, kGossipSyn, Tagged(i));
    // Interleave traffic from another sender; it must not reorder 1's stream.
    carrier->transport()->Send(3, 2, kGossipSyn, Tagged(1000 + i));
  }
  ASSERT_TRUE(carrier->RunUntil([&] { return b.Size() >= 2 * kCount; }));
  int64_t last_from_1 = -1, last_from_3 = 999;
  for (size_t i = 0; i < b.Size(); ++i) {
    Message msg = b.At(i);
    int64_t marker = MarkerOf(msg);
    if (msg.from == 1) {
      EXPECT_EQ(marker, last_from_1 + 1) << "sender 1 stream reordered";
      last_from_1 = marker;
    } else {
      EXPECT_EQ(msg.from, 3);
      EXPECT_EQ(marker, last_from_3 + 1) << "sender 3 stream reordered";
      last_from_3 = marker;
    }
  }
  EXPECT_EQ(last_from_1, kCount - 1);
  EXPECT_EQ(last_from_3, 999 + kCount);
  carrier->transport()->UnregisterNode(1);
  carrier->transport()->UnregisterNode(2);
  carrier->transport()->UnregisterNode(3);
}

TEST_P(TransportConformance, NoDeliveryAfterUnregister) {
  auto carrier = MakeCarrier(GetParam());
  Inbox b;
  carrier->transport()->RegisterNode(1, Transport::Handler([](const Message&) {}));
  carrier->transport()->RegisterNode(2, b.HandlerFn());
  carrier->transport()->UnregisterNode(2);
  carrier->transport()->Send(1, 2, kGossipSyn, Tagged(1));
  carrier->WaitABit();  // give a wrong delivery the chance to happen
  EXPECT_EQ(b.Size(), 0u);
  carrier->transport()->UnregisterNode(1);
}

TEST_P(TransportConformance, NoCrossTalkBetweenHandlers) {
  auto carrier = MakeCarrier(GetParam());
  Inbox b, c;
  carrier->transport()->RegisterNode(1, Transport::Handler([](const Message&) {}));
  carrier->transport()->RegisterNode(2, b.HandlerFn());
  carrier->transport()->RegisterNode(3, c.HandlerFn());
  for (int i = 0; i < 5; ++i) {
    carrier->transport()->Send(1, 2, kGossipSyn, Tagged(i));
  }
  ASSERT_TRUE(carrier->RunUntil([&] { return b.Size() >= 5; }));
  EXPECT_EQ(c.Size(), 0u) << "node 3 saw traffic addressed to node 2";
  for (size_t i = 0; i < b.Size(); ++i) {
    EXPECT_EQ(b.At(i).to, 2);
  }
  carrier->transport()->UnregisterNode(1);
  carrier->transport()->UnregisterNode(2);
  carrier->transport()->UnregisterNode(3);
}

// Delta-encoded digest sections must survive BOTH carriers bit-exactly:
// the sim leg round-trips them through the shared wire codec
// (roundtrip_codec=true) and the tcp leg through real socket frames. Covers
// the compression-unfriendly cases too (unsorted ids, negative deltas,
// extreme generations) so carrier behavior cannot diverge on them.
TEST_P(TransportConformance, DeltaDigestSectionsSurviveCarrier) {
  auto carrier = MakeCarrier(GetParam());
  Inbox a, b;
  carrier->transport()->RegisterNode(1, a.HandlerFn());
  carrier->transport()->RegisterNode(2, b.HandlerFn());

  auto syn = std::make_shared<SynPayload>();
  for (NodeId ep = 0; ep < 64; ++ep) {  // dense sorted steady-state shape
    syn->digests.push_back(
        {.endpoint = ep, .generation = 1754000000, .max_version = 4000 + ep});
  }
  // Adversarial tail: unsorted, extreme, and zero entries.
  syn->digests.push_back({.endpoint = 3, .generation = INT64_MAX, .max_version = 0});
  syn->digests.push_back({.endpoint = 2047, .generation = 0, .max_version = 1});
  const std::vector<GossipDigest> sent_digests = syn->digests;
  carrier->transport()->Send(1, 2, kGossipSyn, syn);

  auto ack = std::make_shared<AckPayload>();
  ack->requests = sent_digests;  // ACK request section uses the same codec
  carrier->transport()->Send(2, 1, kGossipAck, ack);

  ASSERT_TRUE(carrier->RunUntil([&] { return b.Size() >= 1 && a.Size() >= 1; }));
  auto* got_syn = static_cast<const SynPayload*>(b.At(0).payload.get());
  auto* got_ack = static_cast<const AckPayload*>(a.At(0).payload.get());
  for (const std::vector<GossipDigest>* got :
       {&got_syn->digests, &got_ack->requests}) {
    ASSERT_EQ(got->size(), sent_digests.size());
    for (size_t i = 0; i < sent_digests.size(); ++i) {
      EXPECT_EQ((*got)[i].endpoint, sent_digests[i].endpoint) << "entry " << i;
      EXPECT_EQ((*got)[i].generation, sent_digests[i].generation) << "entry " << i;
      EXPECT_EQ((*got)[i].max_version, sent_digests[i].max_version) << "entry " << i;
    }
  }
  carrier->transport()->UnregisterNode(1);
  carrier->transport()->UnregisterNode(2);
}

TEST_P(TransportConformance, TimerFiresOnceAndCancelWorks) {
  auto carrier = MakeCarrier(GetParam());
  std::mutex mu;
  int fired = 0, cancelled_fired = 0;
  TimerId t1 = carrier->clock()->ScheduleAfter(
      VirtualDuration::Millis(10), [&] {
        std::lock_guard<std::mutex> lock(mu);
        ++fired;
      });
  TimerId t2 = carrier->clock()->ScheduleAfter(
      VirtualDuration::Millis(10), [&] {
        std::lock_guard<std::mutex> lock(mu);
        ++cancelled_fired;
      });
  EXPECT_NE(t1, kInvalidTimer);
  EXPECT_NE(t2, kInvalidTimer);
  EXPECT_TRUE(carrier->clock()->CancelTimer(t2));
  ASSERT_TRUE(carrier->RunUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired >= 1;
  }));
  carrier->WaitABit();  // let an (incorrect) late firing of t2 happen
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cancelled_fired, 0);
  // A timer that already fired cannot be cancelled.
  EXPECT_FALSE(carrier->clock()->CancelTimer(t1));
}

TEST_P(TransportConformance, PeriodicTimerFiresRepeatedlyAndStops) {
  auto carrier = MakeCarrier(GetParam());
  std::mutex* mu = carrier->timer_mu();
  // The fn runs with *mu already held on the TCP leg (SerializedClock wraps
  // every callback), and single-threaded on the sim leg — it must NOT lock.
  int fires = 0;
  PeriodicClockTimer timer(carrier->timer_clock(), VirtualDuration::Millis(5),
                           [&] { ++fires; });
  {
    std::lock_guard<std::mutex> lock(*mu);
    timer.Start(VirtualDuration::Millis(5));
  }
  ASSERT_TRUE(carrier->RunUntil([&] {
    std::lock_guard<std::mutex> lock(*mu);
    return fires >= 3;
  }));
  int at_stop;
  {
    std::lock_guard<std::mutex> lock(*mu);
    timer.Stop();
    at_stop = fires;
  }
  carrier->WaitABit();  // wait out many periods
  std::lock_guard<std::mutex> lock(*mu);
  EXPECT_LE(fires, at_stop + 1);
}

INSTANTIATE_TEST_SUITE_P(Carriers, TransportConformance,
                         ::testing::Values("sim", "tcp"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

}  // namespace
}  // namespace scalecheck
