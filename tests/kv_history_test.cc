// The KV client-op history recorder (src/kv/kv_history.h) and the kv-history
// invariant that replays it: complete recording by construction, and a
// deliberately broken storage engine proving the checker catches real
// lost-acknowledged-write bugs.

#include <gtest/gtest.h>

#include <memory>

#include "src/cluster/cluster.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

Cluster::Options HistoryCluster(int n) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.run_mode = RunMode::kRealScale;
  config.enable_kv = true;
  config.seed = 31337;
  WorkloadSpec wl;
  wl.kind = WorkloadKind::kSteadyState;
  wl.horizon = VirtualDuration::Seconds(120);
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

TEST(KvHistoryTest, ManualOpsRecordedAtIssueAndConclusion) {
  Cluster cluster(HistoryCluster(8));
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    cluster.node(0)->kv()->Write(777, "the-value", [&](KvOutcome, std::string) {
      cluster.node(3)->kv()->Read(777, [](KvOutcome, std::string) {});
    });
  });
  cluster.Run();
  const KvHistory* history = cluster.kv_history();
  ASSERT_NE(history, nullptr);
  ASSERT_EQ(history->size(), 2u);
  EXPECT_EQ(history->concluded_count(), 2);

  const KvOpRecord& write = history->ops()[0];
  EXPECT_EQ(write.id, 0u);
  EXPECT_EQ(write.coordinator, 0);
  EXPECT_TRUE(write.is_write);
  EXPECT_EQ(write.key, 777u);
  EXPECT_EQ(write.value, "the-value");
  ASSERT_TRUE(write.concluded);
  EXPECT_EQ(write.outcome, KvOutcome::kOk);
  EXPECT_LE(write.issued_at.nanos(), write.concluded_at.nanos());

  const KvOpRecord& read = history->ops()[1];
  EXPECT_EQ(read.coordinator, 3);
  EXPECT_FALSE(read.is_write);
  EXPECT_EQ(read.key, 777u);
  ASSERT_TRUE(read.concluded);
  EXPECT_EQ(read.outcome, KvOutcome::kOk);
  EXPECT_EQ(read.result_value, "the-value");
  // The write concluded before the read was even issued.
  EXPECT_EQ(history->conclusion_order()[0], 0u);
}

TEST(KvHistoryTest, DriverLoadIsCompletelyRecorded) {
  Cluster::Options options = HistoryCluster(8);
  options.kv_ops_per_second = 50;
  // A small key space forces read-after-write collisions, so the
  // read-your-writes model is actually exercised rather than vacuous.
  options.kv_key_space = 50;
  Cluster cluster(std::move(options));
  RunResult result = cluster.Run();
  const KvHistory* history = cluster.kv_history();
  ASSERT_NE(history, nullptr);
  // Every issued client op has exactly one history record, and every
  // concluded op concluded exactly once.
  EXPECT_EQ(result.kv_issued, static_cast<int64_t>(history->size()));
  EXPECT_GT(result.kv_issued, 1000);
  EXPECT_EQ(history->concluded_count(),
            result.kv_ok + result.kv_unavailable + result.kv_timeout);
  // Healthy steady state: the history satisfies read-your-writes.
  EXPECT_TRUE(result.invariants.kv_checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
}

// A storage engine that acknowledges writes without persisting anything —
// the classic silent-data-loss bug the history checker exists to catch.
class LossyStorage : public StorageEngine {
 public:
  WorkUnits Put(uint64_t /*key*/, std::string /*value*/,
                int64_t /*timestamp*/) override {
    return 50;  // charge plausible work, store nothing
  }
};

TEST(KvHistoryTest, LossyStorageTripsKvHistoryInvariant) {
  Cluster::Options options = HistoryCluster(8);
  options.kv_ops_per_second = 50;
  options.kv_key_space = 50;
  Cluster cluster(std::move(options));
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    cluster.node(static_cast<NodeId>(i))
        ->kv()
        ->ReplaceStorageForTest(std::make_unique<LossyStorage>());
  }
  RunResult result = cluster.Run();
  ASSERT_TRUE(result.invariants.kv_checked);
  ASSERT_FALSE(result.invariants.ok());
  std::vector<std::string> names = result.invariants.ViolatedNames();
  ASSERT_EQ(names.size(), 1u) << result.invariants.ToJson();
  EXPECT_EQ(names[0], "kv-history");
  EXPECT_EQ(RunExitCode(result), 4);
}

}  // namespace
}  // namespace scalecheck
