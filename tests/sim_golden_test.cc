// Golden byte-identity test for the substrate seam.
//
// These two JSON blobs were captured from scalecheck_cli at the commit
// immediately BEFORE the Transport/Clock seam refactor:
//
//   scalecheck_cli --bug=C3831 --mode=colo --nodes=24 --seed=7 --json
//   scalecheck_cli --bug=C5456 --mode=colo --nodes=16 --seed=7
//                  --faults=standard-chaos --json
//
// The seam (SimClock/SimTransport/SimStage forwarding to Simulator +
// NetworkModel) must not perturb one byte of the result: same event order,
// same RNG draws, same message ids, same settle time, same JSON. If this
// test fails the seam leaked into simulation semantics — fix the seam, do
// NOT re-pin the golden unless the change is an intentional,
// result-affecting feature.

#include <gtest/gtest.h>

#include <utility>

#include "src/cluster/cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

// Mirrors RunOne in examples/scalecheck_cli.cpp: Cluster driven directly,
// no memo store, no trace.
RunResult RunPinned(BugSpec spec, int nodes, uint64_t seed) {
  Cluster::Options options;
  options.config = spec.MakeConfig(nodes, RunMode::kColocated, seed);
  options.workload = spec.MakeWorkload(nodes);
  options.faults = spec.MakeFaultPlan(nodes, seed);
  options.kv_ops_per_second = spec.kv_ops_per_second;
  Cluster cluster(std::move(options));
  return cluster.Run();
}

constexpr char kGoldenC3831[] =
    "{\"mode\":\"Colo\",\"num_nodes\":24,\"vnodes_per_node\":1,\"flaps\":0,\"flapped_pairs\":0,\"t"
    "est_duration_ns\":155000000000,\"settle_time_ns\":115000000000,\"settled\":true,\"max_"
    "cpu_utilization\":0.0065324097451612906,\"peak_memory_bytes\":1794247680,\"oom\":fals"
    "e,\"crashed_nodes\":0,\"restarted_nodes\":0,\"fault_events_applied\":0,\"fault_events_h"
    "ealed\":0,\"messages_blocked\":0,\"lateness_p99_ns\":100000,\"lateness_max_ns\":1109199"
    "2,\"lateness_early_count\":0,\"fidelity\":{\"verdict\":\"ok\",\"violated_budget\":\"\",\"firs"
    "t_violation_at_ns\":0,\"violations\":[]},\"invariants\":{\"checked\":true,\"probes\":16,\""
    "kv_checked\":false,\"ok\":true,\"violations\":[]},\"watchdog_fired\":false,\"replay_drif"
    "t\":{\"misses\":0,\"diverged\":false,\"aborted\":false,\"first_function\":\"\",\"first_diges"
    "t\":\"\",\"first_at_ns\":0,\"first_call_index\":0,\"order_context\":\"\"},\"calc_invocations"
    "\":1455,\"calc_executed_real\":1455,\"calc_duration_seconds\":{\"count\":1455,\"mean\":0."
    "011103480000000001,\"min\":0.011103480000000001,\"max\":0.011103480000000001,\"sum\":1"
    "6.155563399999426},\"calc_lock_hold_seconds\":{\"count\":0,\"mean\":0,\"min\":0,\"max\":0,"
    "\"sum\":0},\"pil\":{\"direct_runs\":1455,\"memoized_runs\":0,\"replay_hits\":0,\"replay_mis"
    "ses\":0},\"memo\":{\"records\":0,\"duplicate_puts\":0,\"determinism_violations\":0,\"looku"
    "ps\":0,\"hits\":0,\"misses\":0},\"order_divergences\":0,\"order_enforced\":0,\"kv_issued\":"
    "0,\"kv_ok\":0,\"kv_unavailable\":0,\"kv_timeout\":0,\"kv_inflight_at_stop\":0,\"kv_retrie"
    "s\":0,\"kv_gave_up\":0,\"kv_latency_p99_ns\":0,\"messages_sent\":11085,\"messages_delive"
    "red\":11085,\"stage_tasks_dropped\":0,\"events_executed\":34809}";

constexpr char kGoldenC5456Chaos[] =
    "{\"mode\":\"Colo\",\"num_nodes\":20,\"vnodes_per_node\":16,\"flaps\":6,\"flapped_pairs\":6,\""
    "test_duration_ns\":235000000000,\"settle_time_ns\":195000000000,\"settled\":true,\"max"
    "_cpu_utilization\":0.0015650238667553192,\"peak_memory_bytes\":7910769344,\"oom\":fal"
    "se,\"crashed_nodes\":1,\"restarted_nodes\":1,\"fault_events_applied\":5,\"fault_events_"
    "healed\":5,\"messages_blocked\":81,\"lateness_p99_ns\":4857,\"lateness_max_ns\":4857,\"l"
    "ateness_early_count\":0,\"fidelity\":{\"verdict\":\"ok\",\"violated_budget\":\"\",\"first_vi"
    "olation_at_ns\":0,\"violations\":[]},\"invariants\":{\"checked\":true,\"probes\":24,\"kv_c"
    "hecked\":false,\"ok\":true,\"violations\":[]},\"watchdog_fired\":false,\"replay_drift\":{"
    "\"misses\":0,\"diverged\":false,\"aborted\":false,\"first_function\":\"\",\"first_digest\":\""
    "\",\"first_at_ns\":0,\"first_call_index\":0,\"order_context\":\"\"},\"calc_invocations\":88"
    "7,\"calc_executed_real\":887,\"calc_duration_seconds\":{\"count\":887,\"mean\":0.0065691"
    "697857948117,\"min\":0.0017244000000000001,\"max\":0.0069147999999999996,\"sum\":5.826"
    "8535999999704},\"calc_lock_hold_seconds\":{\"count\":9833,\"mean\":0.00059258147025322"
    "895,\"min\":0,\"max\":0.0069147999999999996,\"sum\":5.8268535969999995},\"pil\":{\"direct"
    "_runs\":887,\"memoized_runs\":0,\"replay_hits\":0,\"replay_misses\":0},\"memo\":{\"records"
    "\":0,\"duplicate_puts\":0,\"determinism_violations\":0,\"lookups\":0,\"hits\":0,\"misses\":"
    "0},\"order_divergences\":0,\"order_enforced\":0,\"kv_issued\":0,\"kv_ok\":0,\"kv_unavaila"
    "ble\":0,\"kv_timeout\":0,\"kv_inflight_at_stop\":0,\"kv_retries\":0,\"kv_gave_up\":0,\"kv_"
    "latency_p99_ns\":0,\"messages_sent\":13553,\"messages_delivered\":13429,\"stage_tasks_"
    "dropped\":0,\"events_executed\":41696}";

TEST(SimGolden, C3831ColoN24Seed7ByteIdentical) {
  BugSpec spec = BugCatalog::Get("C3831");
  RunResult result = RunPinned(spec, 24, 7);
  EXPECT_EQ(result.ToJson(), kGoldenC3831);
}

TEST(SimGolden, C5456ColoChaosSeed7ByteIdentical) {
  BugSpec spec = BugCatalog::Get("C5456");
  spec.fault_plan = "standard-chaos";
  RunResult result = RunPinned(spec, 16, 7);
  EXPECT_EQ(result.ToJson(), kGoldenC5456Chaos);
}

}  // namespace
}  // namespace scalecheck
