// Golden byte-identity test for the substrate seam.
//
// These two JSON blobs were captured from scalecheck_cli:
//
//   scalecheck_cli --bug=C3831 --mode=colo --nodes=24 --seed=7 --json
//   scalecheck_cli --bug=C5456 --mode=colo --nodes=16 --seed=7
//                  --faults=standard-chaos --json
//
// The seam (SimClock/SimTransport/SimStage forwarding to Simulator +
// NetworkModel) must not perturb one byte of the result: same event order,
// same RNG draws, same message ids, same settle time, same JSON. If this
// test fails the seam leaked into simulation semantics — fix the seam, do
// NOT re-pin the golden unless the change is an intentional,
// result-affecting feature.
//
// Re-pinned with the gossip-to-unreachable escape hatch: RunResult gained
// live_endpoints/unreachable_endpoints, and runs whose failure detector
// convicts anybody now consume extra Bernoulli draws (unreachable-SYN
// lottery), shifting float-valued work stats on fault runs. Fault-free
// runs (C3831) changed ONLY by the two new JSON fields — the escape hatch
// is RNG-silent when the unreachable set is empty, and that property is
// part of what this golden pins.
//
// Re-pinned with the N=2048 memory-layout overhaul: each node's gossip
// digest scratch moved into a per-node Arena whose growth is charged to
// MemoryModel under the "gossip-arena" tag, so peak_memory_bytes rose by
// exactly nodes * 4096 (one initial arena block per node: +98304 at N=24,
// +81920 at N=20). Every other field — events_executed, messages_sent,
// lateness, flaps, CPU stats — is byte-identical, which is the point:
// the SoA endpoint store, ring-buffer failure detector, and delta digest
// codec must not perturb simulation semantics, only the memory ledger.
//
// Re-pinned with the durable KV data path (WAL + hinted handoff + read
// repair + tunable consistency): RunResult gained eight kv_* counters
// (kv_wal_bytes, hint queue activity, read repairs, per-consistency-level
// op counts), all zero here because these runs carry no KV load. Every
// pre-existing field is byte-identical — the durability machinery is
// schedule- and RNG-silent when enable_kv is off, and that silence is now
// part of what this golden pins.
//
// Re-pinned with anti-entropy repair (Merkle trees + overload-safe
// scheduling): RunResult gained kv_latency_p50_ns/kv_latency_p999_ns and
// four kv_repair_* counters (sessions, bytes_streamed, keys_fixed,
// aborted), all zero here because these runs carry neither KV load nor
// --kv-repair. Every pre-existing field is byte-identical — with repair
// off no AntiEntropy instance is constructed, no timer is scheduled, and
// the replica-convergence invariant disarms itself, so the subsystem is
// schedule- and RNG-silent. That silence is now part of what this golden
// pins.

#include <gtest/gtest.h>

#include <utility>

#include "src/cluster/cluster.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

// Mirrors RunOne in examples/scalecheck_cli.cpp: Cluster driven directly,
// no memo store, no trace.
RunResult RunPinned(BugSpec spec, int nodes, uint64_t seed) {
  Cluster::Options options;
  options.config = spec.MakeConfig(nodes, RunMode::kColocated, seed);
  options.workload = spec.MakeWorkload(nodes);
  options.faults = spec.MakeFaultPlan(nodes, seed);
  options.kv_ops_per_second = spec.kv_ops_per_second;
  Cluster cluster(std::move(options));
  return cluster.Run();
}

constexpr char kGoldenC3831[] =
    "{\"mode\":\"Colo\",\"num_nodes\":24,\"vnodes_per_node\":1,\"flaps\":0,\"flapped_pairs"
    "\":0,\"live_endpoints\":529,\"unreachable_endpoints\":0,\"test_duration_ns\":15500000"
    "0000,\"settle_time_ns\":115000000000,\"settled\":true,\"max_cpu_utilization\":0.00653"
    "24097451612906,\"peak_memory_bytes\":1794345984,\"oom\":false,\"crashed_nodes\":0,\"r"
    "estarted_nodes\":0,\"fault_events_applied\":0,\"fault_events_healed\":0,\"messages_bl"
    "ocked\":0,\"lateness_p99_ns\":100000,\"lateness_max_ns\":11091992,\"lateness_early_co"
    "unt\":0,\"fidelity\":{\"verdict\":\"ok\",\"violated_budget\":\"\",\"first_violation_a"
    "t_ns\":0,\"violations\":[]},\"invariants\":{\"checked\":true,\"probes\":16,\"kv_check"
    "ed\":false,\"ok\":true,\"violations\":[]},\"watchdog_fired\":false,\"replay_drift\":{"
    "\"misses\":0,\"diverged\":false,\"aborted\":false,\"first_function\":\"\",\"first_dig"
    "est\":\"\",\"first_at_ns\":0,\"first_call_index\":0,\"order_context\":\"\"},\"calc_in"
    "vocations\":1455,\"calc_executed_real\":1455,\"calc_duration_seconds\":{\"count\":145"
    "5,\"mean\":0.011103480000000001,\"min\":0.011103480000000001,\"max\":0.01110348000000"
    "0001,\"sum\":16.155563399999426},\"calc_lock_hold_seconds\":{\"count\":0,\"mean\":0,"
    "\"min\":0,\"max\":0,\"sum\":0},\"pil\":{\"direct_runs\":1455,\"memoized_runs\":0,\"re"
    "play_hits\":0,\"replay_misses\":0},\"memo\":{\"records\":0,\"duplicate_puts\":0,\"det"
    "erminism_violations\":0,\"lookups\":0,\"hits\":0,\"misses\":0},\"order_divergences\":"
    "0,\"order_enforced\":0,\"kv_issued\":0,\"kv_ok\":0,\"kv_unavailable\":0,\"kv_timeout"
    "\":0,\"kv_inflight_at_stop\":0,\"kv_retries\":0,\"kv_gave_up\":0,\"kv_latency_p50_ns"
    "\":0,\"kv_latency_p99_ns\":0,\"kv_latency_p999_ns\":0,\"kv_wal_bytes\":0,\"kv_hints_q"
    "ueued\":0,\"kv_hints_replayed\":0,\"kv_hints_expired\":0,\"kv_read_repairs\":0,\"kv_o"
    "ps_one\":0,\"kv_ops_quorum\":0,\"kv_ops_all\":0,\"kv_repair_sessions\":0,\"kv_repair_"
    "bytes_streamed\":0,\"kv_repair_keys_fixed\":0,\"kv_repair_aborted\":0,\"messages_sent"
    "\":11085,\"messages_delivered\":11085,\"stage_tasks_dropped\":0,\"events_executed\":3"
    "4809}";

constexpr char kGoldenC5456Chaos[] =
    "{\"mode\":\"Colo\",\"num_nodes\":20,\"vnodes_per_node\":16,\"flaps\":6,\"flapped_pair"
    "s\":6,\"live_endpoints\":380,\"unreachable_endpoints\":0,\"test_duration_ns\":2350000"
    "00000,\"settle_time_ns\":195000000000,\"settled\":true,\"max_cpu_utilization\":0.0015"
    "650250691489362,\"peak_memory_bytes\":7910851264,\"oom\":false,\"crashed_nodes\":1,\""
    "restarted_nodes\":1,\"fault_events_applied\":5,\"fault_events_healed\":5,\"messages_b"
    "locked\":81,\"lateness_p99_ns\":4857,\"lateness_max_ns\":4857,\"lateness_early_count"
    "\":0,\"fidelity\":{\"verdict\":\"ok\",\"violated_budget\":\"\",\"first_violation_at_n"
    "s\":0,\"violations\":[]},\"invariants\":{\"checked\":true,\"probes\":24,\"kv_checked"
    "\":false,\"ok\":true,\"violations\":[]},\"watchdog_fired\":false,\"replay_drift\":{\""
    "misses\":0,\"diverged\":false,\"aborted\":false,\"first_function\":\"\",\"first_diges"
    "t\":\"\",\"first_at_ns\":0,\"first_call_index\":0,\"order_context\":\"\"},\"calc_invo"
    "cations\":887,\"calc_executed_real\":887,\"calc_duration_seconds\":{\"count\":887,\"m"
    "ean\":0.0065691697857948117,\"min\":0.0017244000000000001,\"max\":0.00691479999999999"
    "96,\"sum\":5.8268535999999704},\"calc_lock_hold_seconds\":{\"count\":9833,\"mean\":0."
    "00059258147025322884,\"min\":0,\"max\":0.0069147999999999996,\"sum\":5.82685359699999"
    "95},\"pil\":{\"direct_runs\":887,\"memoized_runs\":0,\"replay_hits\":0,\"replay_misse"
    "s\":0},\"memo\":{\"records\":0,\"duplicate_puts\":0,\"determinism_violations\":0,\"lo"
    "okups\":0,\"hits\":0,\"misses\":0},\"order_divergences\":0,\"order_enforced\":0,\"kv_"
    "issued\":0,\"kv_ok\":0,\"kv_unavailable\":0,\"kv_timeout\":0,\"kv_inflight_at_stop\":"
    "0,\"kv_retries\":0,\"kv_gave_up\":0,\"kv_latency_p50_ns\":0,\"kv_latency_p99_ns\":0,"
    "\"kv_latency_p999_ns\":0,\"kv_wal_bytes\":0,\"kv_hints_queued\":0,\"kv_hints_replayed"
    "\":0,\"kv_hints_expired\":0,\"kv_read_repairs\":0,\"kv_ops_one\":0,\"kv_ops_quorum\":"
    "0,\"kv_ops_all\":0,\"kv_repair_sessions\":0,\"kv_repair_bytes_streamed\":0,\"kv_repai"
    "r_keys_fixed\":0,\"kv_repair_aborted\":0,\"messages_sent\":13553,\"messages_delivered"
    "\":13429,\"stage_tasks_dropped\":0,\"events_executed\":41696}";

TEST(SimGolden, C3831ColoN24Seed7ByteIdentical) {
  BugSpec spec = BugCatalog::Get("C3831");
  RunResult result = RunPinned(spec, 24, 7);
  EXPECT_EQ(result.ToJson(), kGoldenC3831);
}

TEST(SimGolden, C5456ColoChaosSeed7ByteIdentical) {
  BugSpec spec = BugCatalog::Get("C5456");
  spec.fault_plan = "standard-chaos";
  RunResult result = RunPinned(spec, 16, 7);
  EXPECT_EQ(result.ToJson(), kGoldenC5456Chaos);
}

}  // namespace
}  // namespace scalecheck
