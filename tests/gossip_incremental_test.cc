// The incremental-digest contract: the cached SYN digest list must always
// equal a brute-force recompute from the endpoint map, and maintaining it
// must cost O(changed endpoint states) per round — not O(N). The unit tests
// pin both properties directly on a Gossiper; the cluster test asserts the
// same bound end-to-end through SimProfiler counters from a real run.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/gossip/gossiper.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"
#include "src/sim/profiler.h"

namespace scalecheck {
namespace {

// What MakeSynDigests must return, computed the slow way.
std::vector<GossipDigest> BruteForceDigests(const Gossiper& g) {
  std::vector<GossipDigest> out;
  for (const auto& [ep, state] : g.endpoints()) {
    out.push_back({ep, state.heartbeat().generation, state.MaxVersion()});
  }
  return out;
}

void ExpectDigestsMatch(const Gossiper& g) {
  std::vector<GossipDigest> got = g.MakeSynDigests();
  std::vector<GossipDigest> want = BruteForceDigests(g);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].endpoint, want[i].endpoint) << i;
    EXPECT_EQ(got[i].generation, want[i].generation) << i;
    EXPECT_EQ(got[i].max_version, want[i].max_version) << i;
  }
}

EndpointState PeerState(int64_t generation, int64_t heartbeat_version) {
  EndpointState s(generation);
  s.mutable_heartbeat().version = heartbeat_version;
  return s;
}

TEST(IncrementalDigest, CacheMatchesBruteForceThroughMutations) {
  Gossiper g(0, 1, {});
  ExpectDigestsMatch(g);  // just self

  for (NodeId ep = 1; ep <= 16; ++ep) {
    g.AddKnownEndpoint(ep, PeerState(1, 0));
  }
  ExpectDigestsMatch(g);

  g.IncrementHeartbeat();
  ExpectDigestsMatch(g);

  // Remote heartbeat advances via ApplyStates.
  EndpointStateMap updates;
  updates[3] = PeerState(1, 5);
  updates[9] = PeerState(1, 7);
  g.ApplyStates(updates);
  ExpectDigestsMatch(g);

  // Generation bump (peer restart) replaces wholesale.
  EndpointStateMap restart;
  restart[3] = PeerState(2, 1);
  g.ApplyStates(restart);
  ExpectDigestsMatch(g);

  // Membership changes force structural rebuilds.
  g.RemoveEndpoint(9);
  ExpectDigestsMatch(g);
  g.AddKnownEndpoint(40, PeerState(1, 2));
  ExpectDigestsMatch(g);

  VersionedValue v;
  v.status = StatusKind::kLeaving;
  g.SetLocalState(ApplicationStateKey::kStatus, v);
  ExpectDigestsMatch(g);
}

TEST(IncrementalDigest, SteadyStateRefreshesOnlyChangedEntries) {
  constexpr NodeId kPeers = 64;
  Gossiper g(0, 1, {});
  for (NodeId ep = 1; ep <= kPeers; ++ep) {
    g.AddKnownEndpoint(ep, PeerState(1, 0));
  }
  g.MakeSynDigests();  // warm the cache (one full rebuild)
  uint64_t full_before = g.digest_full_rebuilds();
  uint64_t refreshed_before = g.digest_entries_refreshed();

  // k peers advance; the next build must refresh exactly k entries.
  constexpr NodeId kChanged = 5;
  EndpointStateMap updates;
  for (NodeId ep = 1; ep <= kChanged; ++ep) {
    updates[ep] = PeerState(1, 10);
  }
  g.ApplyStates(updates);
  g.MakeSynDigests();
  EXPECT_EQ(g.digest_full_rebuilds(), full_before);
  EXPECT_EQ(g.digest_entries_refreshed() - refreshed_before,
            static_cast<uint64_t>(kChanged));

  // An unchanged round refreshes nothing.
  refreshed_before = g.digest_entries_refreshed();
  g.MakeSynDigests();
  g.MakeSynDigests();
  EXPECT_EQ(g.digest_entries_refreshed(), refreshed_before);

  // A duplicate delivery of old news (same versions) also refreshes nothing.
  g.ApplyStates(updates);
  g.MakeSynDigests();
  EXPECT_EQ(g.digest_entries_refreshed(), refreshed_before);
}

TEST(IncrementalDigest, MembershipChangeTriggersFullRebuild) {
  Gossiper g(0, 1, {});
  for (NodeId ep = 1; ep <= 8; ++ep) {
    g.AddKnownEndpoint(ep, PeerState(1, 0));
  }
  g.MakeSynDigests();
  uint64_t full_before = g.digest_full_rebuilds();
  g.AddKnownEndpoint(9, PeerState(1, 0));
  g.MakeSynDigests();
  EXPECT_EQ(g.digest_full_rebuilds(), full_before + 1);
}

TEST(IncrementalDigest, LiveViewMatchesBruteForceAcrossFlips) {
  Gossiper g(0, 1, {});
  for (NodeId ep = 1; ep <= 10; ++ep) {
    g.AddKnownEndpoint(ep, PeerState(1, 0));
    g.MarkAlive(ep);
  }
  EXPECT_EQ(g.LiveEndpointsView(), g.LiveEndpoints());
  g.MarkDead(4);
  g.MarkDead(7);
  EXPECT_EQ(g.LiveEndpointsView(), g.LiveEndpoints());
  g.MarkAlive(4);
  const std::vector<NodeId>& view = g.LiveEndpointsView();
  EXPECT_EQ(view, g.LiveEndpoints());
  EXPECT_EQ(view.size(), 9u);
  EXPECT_TRUE(std::is_sorted(view.begin(), view.end()));
}

// End-to-end: in a real deployment the per-node digest maintenance cost must
// be bounded by the updates actually applied (plus membership rebuilds and
// one self-bump per build), and far below the naive builds × N cost the old
// full-recompute design paid.
TEST(IncrementalDigest, ClusterRunCostIsBoundedByChanges) {
  // Large enough that gossip staleness (not cluster size) bounds what each
  // exchange ships; at toy scales every endpoint changes every round and the
  // incremental design has nothing to skip (at N=64 the win is only ~1.5x;
  // at 128 it is ~3x and grows with N).
  constexpr int kNodes = 128;
  BugSpec spec = BugCatalog::Get("C3831");
  SimProfiler profiler;
  RunOptions options;
  options.profiler = &profiler;
  RunResult r = RunSingle(spec, kNodes, RunMode::kColocated, 7, options);
  ASSERT_TRUE(r.has_profile);
  const SimProfiler::Counters& c = r.profile;
  ASSERT_GT(c.digest_builds, 0u);
  ASSERT_GT(c.gossip_updates_applied, 0u);

  // Each full rebuild touches at most N entries (the endpoint map never
  // exceeds cluster size); each incremental refresh is accounted against an
  // applied update or the builder's own heartbeat bump.
  const uint64_t rebuild_entries =
      c.digest_full_rebuilds * static_cast<uint64_t>(kNodes);
  EXPECT_LE(c.digest_entries_refreshed,
            c.gossip_updates_applied + rebuild_entries + c.digest_builds);

  // The naive design recomputed every entry on every build. Demand at least
  // a 2x improvement even at this small scale; at N=512 the gap is ~20x.
  uint64_t naive_entries = c.digest_builds * static_cast<uint64_t>(kNodes);
  EXPECT_LT(c.digest_entries_refreshed + rebuild_entries, naive_entries / 2);
}

}  // namespace
}  // namespace scalecheck
