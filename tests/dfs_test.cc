// The second scale-check target (src/dfs/): startup behaviour, the storm
// threshold, and PIL application to the re-replication scan.

#include <gtest/gtest.h>

#include "src/dfs/dfs.h"

namespace scalecheck {
namespace {

DfsConfig SmallConfig(int n) {
  DfsConfig config;
  config.datanodes = n;
  config.horizon = VirtualDuration::Seconds(200);
  return config;
}

TEST(DfsTest, SmallClusterStartsCleanly) {
  DfsResult r = RunDfsStartup(SmallConfig(16), DfsMode::kRealScale);
  EXPECT_TRUE(r.stabilized) << r.Summary();
  EXPECT_EQ(r.dead_marks, 0);
  EXPECT_EQ(r.re_registrations, 0);
  EXPECT_EQ(r.reports_processed, 16);  // one initial report per DataNode
  EXPECT_EQ(r.scans_run, 0);
}

TEST(DfsTest, DeterministicAcrossRuns) {
  DfsResult a = RunDfsStartup(SmallConfig(24), DfsMode::kRealScale);
  DfsResult b = RunDfsStartup(SmallConfig(24), DfsMode::kRealScale);
  EXPECT_EQ(a.dead_marks, b.dead_marks);
  EXPECT_EQ(a.reports_processed, b.reports_processed);
  EXPECT_EQ(a.test_duration.nanos(), b.test_duration.nanos());
}

TEST(DfsTest, ReportBacklogStarvesHeartbeatsAtScale) {
  // Same configuration, growing N: heartbeat shedding appears once the
  // serialized report backlog exceeds the handler timeout, and dead marks
  // once it exceeds the expiry interval.
  DfsResult small = RunDfsStartup(SmallConfig(16), DfsMode::kRealScale);
  DfsResult medium = RunDfsStartup(SmallConfig(64), DfsMode::kRealScale);
  DfsResult large = RunDfsStartup(SmallConfig(192), DfsMode::kRealScale);
  EXPECT_EQ(small.reports_shed, 0);
  EXPECT_GT(medium.reports_shed, 0);  // shedding, but no expiries yet
  EXPECT_EQ(medium.dead_marks, 0);
  EXPECT_GT(large.dead_marks, 50) << large.Summary();  // the storm
  EXPECT_GT(large.re_registrations, 10);
  EXPECT_FALSE(large.stabilized);
}

TEST(DfsTest, ScansTakeThePilInReplay) {
  // Use the storm configuration so scans actually run.
  DfsConfig config = SmallConfig(192);
  MemoStore store;
  DfsResult memoized = RunDfsStartup(config, DfsMode::kMemoize, &store);
  ASSERT_GT(memoized.scans_run, 0) << memoized.Summary();
  EXPECT_GT(store.size(), 0u);
  EXPECT_GT(memoized.pil.memoized_runs, 0u);

  DfsResult replay = RunDfsStartup(config, DfsMode::kPilReplay, &store);
  EXPECT_GT(replay.pil.replay_hits + replay.pil.replay_misses, 0u);
  EXPECT_EQ(replay.pil.direct_runs, 0u);
  // Replay reproduces the storm verdict.
  EXPECT_EQ(replay.stabilized, memoized.stabilized);
  EXPECT_GT(replay.dead_marks, 50);
}

TEST(DfsTest, ReplayTracksRealScale) {
  DfsConfig config = SmallConfig(96);
  DfsResult real = RunDfsStartup(config, DfsMode::kRealScale);
  MemoStore store;
  RunDfsStartup(config, DfsMode::kMemoize, &store);
  DfsResult replay = RunDfsStartup(config, DfsMode::kPilReplay, &store);
  EXPECT_EQ(replay.stabilized, real.stabilized);
  EXPECT_EQ(replay.dead_marks, real.dead_marks);
}

TEST(DfsTest, PeriodicReportsContinueAfterStartup) {
  DfsConfig config = SmallConfig(8);
  config.report_interval = VirtualDuration::Seconds(7);
  config.horizon = VirtualDuration::Seconds(200);
  DfsResult r = RunDfsStartup(config, DfsMode::kRealScale);
  // Initial 8 + periodic re-reports until stabilization stopped the run.
  EXPECT_GT(r.reports_processed, 8);
}

TEST(DfsTest, ModeNamesResolve) {
  EXPECT_STREQ(DfsModeName(DfsMode::kRealScale), "Real");
  EXPECT_STREQ(DfsModeName(DfsMode::kColocated), "Colo");
  EXPECT_STREQ(DfsModeName(DfsMode::kMemoize), "Memoize");
  EXPECT_STREQ(DfsModeName(DfsMode::kPilReplay), "SC+PIL");
}

}  // namespace
}  // namespace scalecheck
