// Property tests for the fluid processor-sharing CPU model under randomized
// workloads: work conservation, completion-order sanity, and throughput
// bounds. These are the invariants the whole Figure 3 comparison stands on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/cpu_model.h"

namespace scalecheck {
namespace {

struct CpuCase {
  double cores;
  double penalty;
  int tasks;
  uint64_t seed;
};

class CpuPropertyTest : public ::testing::TestWithParam<CpuCase> {};

TEST_P(CpuPropertyTest, WorkIsConservedAndThroughputBounded) {
  const CpuCase& c = GetParam();
  Simulator sim(1);
  CpuModel::Config cfg;
  cfg.cores = c.cores;
  cfg.speed = 1e9;
  cfg.ctx_switch_penalty = c.penalty;
  CpuModel cpu(&sim, cfg);

  Rng rng(c.seed);
  WorkUnits total_work = 0;
  int done = 0;
  // Random arrivals over 10 virtual seconds.
  for (int i = 0; i < c.tasks; ++i) {
    WorkUnits work = rng.UniformInt(1000, 500'000'000);
    total_work += work;
    VirtualDuration at = VirtualDuration::Nanos(rng.UniformInt(0, 10'000'000'000));
    sim.ScheduleAt(VirtualTime::Zero() + at, [&cpu, &done, work] {
      cpu.StartTask(work, [&done] { ++done; });
    });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(done, c.tasks);
  EXPECT_EQ(cpu.active_count(), 0);

  // Conservation: busy_core_seconds counts core *occupancy*. Without a
  // context-switch penalty occupancy equals the submitted work exactly; with
  // one, cores burn extra occupancy switching, so occupancy >= useful work.
  double submitted_seconds = static_cast<double>(total_work) / cfg.speed;
  EXPECT_GE(cpu.busy_core_seconds(), submitted_seconds * 0.9999);
  if (c.penalty == 0.0) {
    EXPECT_NEAR(cpu.busy_core_seconds(), submitted_seconds, submitted_seconds * 1e-6);
  }

  // Throughput bound: the run cannot finish faster than perfect parallelism
  // allows (total work / cores), nor faster than the longest single task.
  double elapsed = sim.Now().seconds();
  EXPECT_GE(elapsed * cfg.cores * cfg.speed, static_cast<double>(total_work) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CpuPropertyTest,
    ::testing::Values(CpuCase{1, 0.0, 20, 11}, CpuCase{1, 0.1, 20, 12},
                      CpuCase{4, 0.0, 50, 13}, CpuCase{4, 0.05, 50, 14},
                      CpuCase{16, 0.03, 120, 15}, CpuCase{2, 0.0, 3, 16},
                      CpuCase{16, 0.0, 200, 17}));

TEST(CpuOrderProperty, EqualStartEqualWorkFinishTogether) {
  Simulator sim(1);
  CpuModel cpu(&sim, CpuModel::Config{2.0, 1e9, 0.0});
  std::vector<double> finish;
  for (int i = 0; i < 6; ++i) {
    cpu.StartTask(600'000'000, [&finish, &sim] { finish.push_back(sim.Now().seconds()); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(finish.size(), 6u);
  for (double f : finish) {
    EXPECT_NEAR(f, finish[0], 1e-6);  // PS: identical tasks tie
  }
  // 6 tasks x 0.6s on 2 cores = 1.8 core-seconds each... total 3.6 / 2 = 1.8s.
  EXPECT_NEAR(finish[0], 1.8, 1e-5);
}

TEST(CpuOrderProperty, ShorterTasksNeverFinishAfterLongerOnesStartedTogether) {
  Simulator sim(1);
  CpuModel cpu(&sim, CpuModel::Config{1.0, 1e9, 0.0});
  std::vector<std::pair<WorkUnits, double>> finish;
  std::vector<WorkUnits> works = {100'000'000, 400'000'000, 200'000'000, 50'000'000};
  for (WorkUnits w : works) {
    cpu.StartTask(w, [&finish, &sim, w] { finish.emplace_back(w, sim.Now().seconds()); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(finish.size(), works.size());
  for (size_t i = 1; i < finish.size(); ++i) {
    EXPECT_LE(finish[i - 1].first, finish[i].first) << "completion not by work order";
  }
}

}  // namespace
}  // namespace scalecheck
