// The runtime invariant checker (src/check/): clean runs stay clean, the
// planted left-join bug is caught as a zombie endpoint, the report is
// deterministic, and the exit-code contract distinguishes invariant
// violations (4) from fidelity verdicts (3).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

constexpr int kNodes = 12;
constexpr uint64_t kSeed = 1234;

BugSpec DecommissionSpec() {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.calc_version = CalcVersion::kV3C3881Fix;  // fast calc; not under test
  return spec;
}

// A crash whose restart lands *after* the decommission target's LEFT state
// has disseminated (LEAVING starts at 20s, transition 90s, gossip stop at
// 130s). The restarted node re-learns every endpoint from scratch, so its
// first sighting of the departed node is the LEFT tombstone — exactly the
// schedule the planted recovery bug mishandles.
FaultPlan LateRestartCrash() {
  FaultPlan plan;
  plan.name = "late-restart-crash";
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = VirtualDuration::Seconds(145);
  ev.duration = VirtualDuration::Seconds(20);
  ev.nodes_a = {9};
  plan.events.push_back(ev);
  return plan;
}

TEST(InvariantsTest, CleanDecommissionRunHasNoViolations) {
  BugSpec spec = DecommissionSpec();
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_GT(result.invariants.probes, 0u);
  EXPECT_TRUE(result.invariants.ok())
      << result.invariants.ToJson();
  EXPECT_EQ(RunExitCode(result), 0);
}

TEST(InvariantsTest, DisabledCheckerReportsUnchecked) {
  BugSpec spec = DecommissionSpec();
  spec.check.enabled = false;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_FALSE(result.invariants.checked);
  EXPECT_EQ(result.invariants.probes, 0u);
  EXPECT_EQ(RunExitCode(result), 0);
}

TEST(InvariantsTest, LateRestartWithoutPlantedBugStaysClean) {
  // The adverse schedule alone is survivable: the correct recovery path
  // honours the LEFT tombstone, so no invariant fires.
  BugSpec spec = DecommissionSpec();
  spec.custom_faults = LateRestartCrash();
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
  EXPECT_EQ(result.restarted_nodes, 1);
}

TEST(InvariantsTest, PlantedLeftJoinBugIsCaughtAsZombieEndpoint) {
  BugSpec spec = DecommissionSpec();
  spec.custom_faults = LateRestartCrash();
  spec.check.plant_left_join_bug = true;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  ASSERT_TRUE(result.invariants.checked);
  ASSERT_FALSE(result.invariants.ok());
  std::vector<std::string> names = result.invariants.ViolatedNames();
  ASSERT_EQ(names.size(), 1u) << result.invariants.ToJson();
  EXPECT_EQ(names[0], "zombie-endpoint");
  // The first-violation timestamp is a real probe instant after the restart.
  const InvariantViolation& v = result.invariants.violations[0];
  EXPECT_GT(v.first_at.nanos(), VirtualDuration::Seconds(165).nanos());
  EXPECT_GT(v.count, 0);
  EXPECT_FALSE(v.detail.empty());
  // Violations surface in the human summary and drive the exit code.
  EXPECT_NE(result.Summary().find("INVARIANT:zombie-endpoint"),
            std::string::npos);
  EXPECT_EQ(RunExitCode(result), 4);
}

TEST(InvariantsTest, ViolationReportIsDeterministic) {
  BugSpec spec = DecommissionSpec();
  spec.custom_faults = LateRestartCrash();
  spec.check.plant_left_join_bug = true;
  RunResult a = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  RunResult b = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.invariants.ToJson(), b.invariants.ToJson());
}

TEST(InvariantsTest, KvHistoryCheckedOnSteadyState) {
  BugSpec spec = DecommissionSpec();
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(120);
  spec.kv_ops_per_second = 25.0;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.kv_checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
}

TEST(InvariantsTest, KvHistoryNotCheckableUnderMembershipChange) {
  // Decommission moves key ownership; the simulator has no data streaming,
  // so acked data legitimately strands and the kv gate must stay off.
  BugSpec spec = DecommissionSpec();
  spec.kv_ops_per_second = 25.0;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_FALSE(result.invariants.kv_checked);
}

TEST(InvariantsTest, CrashedDecommissionTargetRejoinsCleanly) {
  // Regression for the incarnation guard on deferred lifecycle lambdas:
  // crash the decommission *target* mid-transition (LEAVING since 20s,
  // LEFT due at 110s; crash 60s..100s). The stale LEFT/stop continuations
  // belong to the dead incarnation and must not fire against the restarted
  // node, which rejoins NORMAL with its durable tokens.
  BugSpec spec = DecommissionSpec();
  FaultPlan plan;
  plan.name = "crash-decommission-target";
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = VirtualDuration::Seconds(60);
  ev.duration = VirtualDuration::Seconds(40);
  ev.nodes_a = {kNodes / 2};  // the decommission target
  plan.events.push_back(ev);
  spec.custom_faults = plan;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_EQ(result.restarted_nodes, 1);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
}

TEST(InvariantsTest, IslandingPartitionHealsViaEscapeHatch) {
  // Regression for the ChaosSearch-found islanding schedule: partition one
  // node away long enough for mutual conviction, then heal the links. With
  // gossip only ever targeting the live view this cluster stayed split
  // forever; the gossip-to-unreachable escape hatch (plus the seed-contact
  // fallback on the fully islanded node) must re-knit it within the
  // partition-heals bound.
  BugSpec spec = DecommissionSpec();
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(120);
  spec.custom_faults = FaultPlan::IslandPartition(kNodes, kSeed);
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  // The partition actually bit: frames were refused and conviction happened.
  EXPECT_GT(result.messages_blocked, 0u);
  EXPECT_GT(result.flaps, 0);
  EXPECT_EQ(result.fault_events_applied, 1);
  EXPECT_EQ(result.fault_events_healed, 1);
  // ...and the cluster healed: everyone sees everyone, nothing unreachable.
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
  EXPECT_EQ(result.unreachable_endpoints, 0) << result.Summary();
  EXPECT_EQ(result.live_endpoints, int64_t{kNodes} * (kNodes - 1));
  EXPECT_EQ(RunExitCode(result), 0);
}

TEST(InvariantsTest, PermanentPartitionTripsPartitionHeals) {
  // Positive control for the new invariant: a partition that never heals
  // (duration zero = no heal event) must be reported as partition-heals,
  // not silently tolerated, and must map to the invariant exit code.
  BugSpec spec = DecommissionSpec();
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(120);
  FaultPlan plan;
  plan.name = "permanent-island";
  FaultEvent ev;
  ev.kind = FaultKind::kPartition;
  ev.at = VirtualDuration::Seconds(8);
  ev.duration = VirtualDuration::Zero();  // never heals
  ev.nodes_a = {kNodes - 1};
  plan.events.push_back(ev);
  spec.custom_faults = plan;
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_FALSE(result.invariants.ok());
  std::vector<std::string> names = result.invariants.ViolatedNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "partition-heals"),
            names.end())
      << result.invariants.ToJson();
  EXPECT_GT(result.unreachable_endpoints, 0) << result.Summary();
  EXPECT_EQ(RunExitCode(result), 4);
}

}  // namespace
}  // namespace scalecheck
