// Merkle-tree tests (src/kv/merkle.h): the determinism and incrementality
// contracts anti-entropy repair rests on, the diff walk against a
// brute-force leaf comparison, and the wire codec's strict decode of the
// repair payloads (truncation at every prefix, corrupt level/index fields,
// trailing garbage — all rejected, never crashed on).

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/kv/anti_entropy.h"
#include "src/kv/kv_service.h"
#include "src/kv/merkle.h"
#include "src/net/wire.h"

namespace scalecheck {
namespace {

// ---------------------------------------------------------------------------
// Determinism / incrementality.

TEST(MerkleTree, HashIndependentOfBuildOrder) {
  Rng rng(0x6d65726bULL);
  std::vector<std::pair<uint64_t, int64_t>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(rng.Next(), static_cast<int64_t>(i + 1));
  }
  MerkleTree forward;
  for (const auto& [key, ts] : pairs) forward.Apply(key, ts);
  std::vector<std::pair<uint64_t, int64_t>> shuffled = pairs;
  rng.Shuffle(&shuffled);
  MerkleTree scrambled;
  for (const auto& [key, ts] : shuffled) scrambled.Apply(key, ts);

  EXPECT_EQ(forward.Root(), scrambled.Root());
  // Every interior node and leaf, not just the root.
  for (int level = 0; level <= forward.depth(); ++level) {
    for (uint64_t index = 0; index < (uint64_t{1} << level); ++index) {
      ASSERT_EQ(forward.HashOfNode(level, index, {}),
                scrambled.HashOfNode(level, index, {}))
          << "level " << level << " index " << index;
    }
  }
}

TEST(MerkleTree, IncrementalUpdatesMatchFullRebuild) {
  Rng rng(0x7265626cULL);
  MerkleTree incremental;
  std::map<uint64_t, int64_t> truth;  // final key -> winning timestamp
  // A churny update stream: repeated keys, newer and older timestamps mixed.
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.Next() % 300;
    int64_t ts = rng.UniformInt(1, 1000);
    incremental.Apply(key, ts);
    int64_t& winner = truth[key];
    winner = std::max(winner, ts);
  }
  MerkleTree rebuilt;
  for (const auto& [key, ts] : truth) rebuilt.Apply(key, ts);

  EXPECT_EQ(incremental.num_keys(), truth.size());
  for (int level = 0; level <= incremental.depth(); ++level) {
    for (uint64_t index = 0; index < (uint64_t{1} << level); ++index) {
      ASSERT_EQ(incremental.HashOfNode(level, index, {}),
                rebuilt.HashOfNode(level, index, {}))
          << "level " << level << " index " << index;
    }
  }
}

TEST(MerkleTree, OlderTimestampIsLwwNoOp) {
  MerkleTree tree;
  tree.Apply(42, 100);
  DigestValue before = tree.Root();
  tree.Apply(42, 50);  // older: must not change anything
  EXPECT_EQ(tree.Root(), before);
  tree.Apply(42, 100);  // equal: idempotent
  EXPECT_EQ(tree.Root(), before);
  tree.Apply(42, 101);  // newer: must change the summary
  EXPECT_NE(tree.Root(), before);
}

TEST(MerkleTree, EmptyTreesAgreeAndSingleKeyIsLocalized) {
  MerkleTree a;
  MerkleTree b;
  EXPECT_EQ(a.Root(), b.Root());
  EXPECT_EQ(a.Root(), (DigestValue{0, 0}));

  b.Apply(7, 1);
  EXPECT_NE(a.Root(), b.Root());
  // Exactly one leaf differs: the one 7's token lands in.
  uint64_t hot = b.LeafOfToken(KvTokenForKey(7));
  int leaves = b.depth();
  int differing = 0;
  for (uint64_t leaf = 0; leaf < b.num_leaves(); ++leaf) {
    if (a.HashOfNode(leaves, leaf, {}) != b.HashOfNode(leaves, leaf, {})) {
      ++differing;
      EXPECT_EQ(leaf, hot);
    }
  }
  EXPECT_EQ(differing, 1);
}

// ---------------------------------------------------------------------------
// Diff walk vs brute force.

// The descent anti-entropy performs: compare (level, index) hashes, push
// children of differing interior nodes, collect differing leaves.
std::vector<uint64_t> DiffWalk(const MerkleTree& a, const MerkleTree& b,
                               const std::vector<KeyRange>& mask) {
  std::vector<uint64_t> leaves;
  std::deque<std::pair<int, uint64_t>> frontier = {{0, 0}};
  while (!frontier.empty()) {
    auto [level, index] = frontier.front();
    frontier.pop_front();
    if (a.HashOfNode(level, index, mask) == b.HashOfNode(level, index, mask)) {
      continue;
    }
    if (level == a.depth()) {
      leaves.push_back(index);
      continue;
    }
    frontier.push_back({level + 1, 2 * index});
    frontier.push_back({level + 1, 2 * index + 1});
  }
  std::sort(leaves.begin(), leaves.end());
  return leaves;
}

std::vector<uint64_t> BruteForceDiff(const MerkleTree& a, const MerkleTree& b,
                                     const std::vector<KeyRange>& mask) {
  std::vector<uint64_t> leaves;
  for (uint64_t leaf = 0; leaf < a.num_leaves(); ++leaf) {
    if (a.KeysInLeaf(leaf, mask) != b.KeysInLeaf(leaf, mask)) {
      leaves.push_back(leaf);
    }
  }
  return leaves;
}

TEST(MerkleTree, DiffWalkMatchesBruteForceOverRandomDivergence) {
  Rng rng(0x64696666ULL);
  for (int round = 0; round < 20; ++round) {
    MerkleTree a;
    MerkleTree b;
    // Shared base set.
    for (int i = 0; i < 400; ++i) {
      uint64_t key = rng.Next();
      int64_t ts = rng.UniformInt(1, 1'000'000);
      a.Apply(key, ts);
      b.Apply(key, ts);
    }
    // Random divergence: keys only a has, keys only b has, and keys where
    // one side saw a newer timestamp.
    int divergences = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < divergences; ++i) {
      uint64_t key = rng.Next();
      int64_t ts = rng.UniformInt(1, 1'000'000);
      switch (rng.UniformInt(0, 2)) {
        case 0:
          a.Apply(key, ts);
          break;
        case 1:
          b.Apply(key, ts);
          break;
        default:
          a.Apply(key, ts);
          b.Apply(key, ts + rng.UniformInt(1, 1000));
          break;
      }
    }
    ASSERT_EQ(DiffWalk(a, b, {}), BruteForceDiff(a, b, {}))
        << "round " << round;
  }
}

TEST(MerkleTree, MaskedDiffIsBlindToDivergenceOutsideTheMask) {
  Rng rng(0x6d61736bULL);
  // One mask covering a quarter of the token space, straddling leaf spans.
  std::vector<KeyRange> mask = {
      {0x1000000000000123ull, 0x5000000000000456ull}};
  auto in_mask = [&](Token t) {
    return t > mask[0].start && t <= mask[0].end;
  };
  MerkleTree a;
  MerkleTree b;
  int inside = 0;
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.Next();
    int64_t ts = rng.UniformInt(1, 1'000'000);
    // Divergent everywhere: only a gets the key.
    a.Apply(key, ts);
    if (in_mask(KvTokenForKey(key))) ++inside;
  }
  ASSERT_GT(inside, 0);
  // Restricted to the mask, the walk must find exactly the brute-force
  // masked diff; in particular hashes agree wherever the mask is empty.
  EXPECT_EQ(DiffWalk(a, b, mask), BruteForceDiff(a, b, mask));
  std::vector<KeyRange> empty_span = {
      {0x8000000000000000ull, 0x8000000000000001ull}};
  EXPECT_EQ(a.HashOfNode(0, 0, empty_span), b.HashOfNode(0, 0, empty_span));
}

// ---------------------------------------------------------------------------
// Wire codec: strict decode of the repair payloads.

Message Frame(int type, std::shared_ptr<const Payload> payload) {
  Message msg;
  msg.id = 777;
  msg.from = 2;
  msg.to = 5;
  msg.type = type;
  msg.pair_seq = 31;
  msg.payload = std::move(payload);
  return msg;
}

std::shared_ptr<KvRepairHashPayload> SampleHashPayload() {
  auto payload = std::make_shared<KvRepairHashPayload>();
  payload->session_id = 9001;
  payload->level = 3;
  payload->hashes = {{0, DigestValue{1, 2}},
                     {3, DigestValue{0xdeadbeefull, 0xcafef00dull}},
                     {7, DigestValue{42, 0}}};
  return payload;
}

std::shared_ptr<KvRepairDiffPayload> SampleDiffPayload() {
  auto payload = std::make_shared<KvRepairDiffPayload>();
  payload->session_id = 9001;
  payload->level = 3;
  payload->differing = {1, 3, 6};
  return payload;
}

TEST(RepairWireCodec, HashAndDiffPayloadsRoundTrip) {
  {
    Message in = Frame(kKvRepairHashReq, SampleHashPayload());
    Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
    ASSERT_TRUE(out.ok()) << out.status().message();
    auto decoded =
        std::static_pointer_cast<const KvRepairHashPayload>(out.value().payload);
    EXPECT_EQ(decoded->session_id, 9001u);
    EXPECT_EQ(decoded->level, 3u);
    ASSERT_EQ(decoded->hashes.size(), 3u);
    EXPECT_EQ(decoded->hashes[1].first, 3u);
    EXPECT_EQ(decoded->hashes[1].second, (DigestValue{0xdeadbeefull, 0xcafef00dull}));
  }
  {
    Message in = Frame(kKvRepairHashResp, SampleDiffPayload());
    Result<Message> out = wire::DecodeMessage(wire::EncodeMessage(in));
    ASSERT_TRUE(out.ok()) << out.status().message();
    auto decoded =
        std::static_pointer_cast<const KvRepairDiffPayload>(out.value().payload);
    EXPECT_EQ(decoded->session_id, 9001u);
    EXPECT_EQ(decoded->differing, (std::vector<uint64_t>{1, 3, 6}));
  }
}

TEST(RepairWireCodec, TruncationAtEveryPrefixRejected) {
  for (int type : {kKvRepairHashReq, kKvRepairHashResp}) {
    std::shared_ptr<const Payload> payload =
        type == kKvRepairHashReq
            ? std::shared_ptr<const Payload>(SampleHashPayload())
            : std::shared_ptr<const Payload>(SampleDiffPayload());
    std::string frame = wire::EncodeMessage(Frame(type, payload));
    for (size_t len = 0; len < frame.size(); ++len) {
      Result<Message> out = wire::DecodeMessage(frame.substr(0, len));
      EXPECT_FALSE(out.ok()) << "type " << type << " accepted a " << len
                             << "-byte prefix of a " << frame.size()
                             << "-byte frame";
    }
    EXPECT_TRUE(wire::DecodeMessage(frame).ok());
  }
}

TEST(RepairWireCodec, TrailingGarbageRejected) {
  std::string frame =
      wire::EncodeMessage(Frame(kKvRepairHashReq, SampleHashPayload()));
  Result<Message> out = wire::DecodeMessage(frame + "x");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruptData);
}

TEST(RepairWireCodec, AbsurdLevelRejected) {
  auto payload = SampleHashPayload();
  payload->level = 21;  // > kMaxMerkleLevel: a forged descent past any tree
  std::string frame = wire::EncodeMessage(Frame(kKvRepairHashReq, payload));
  EXPECT_FALSE(wire::DecodeMessage(frame).ok());

  auto diff = SampleDiffPayload();
  diff->level = 64;
  frame = wire::EncodeMessage(Frame(kKvRepairHashResp, diff));
  EXPECT_FALSE(wire::DecodeMessage(frame).ok());
}

TEST(RepairWireCodec, NonAscendingOrOutOfRangeIndicesRejected) {
  {
    auto payload = SampleHashPayload();
    payload->hashes = {{3, DigestValue{1, 1}}, {3, DigestValue{2, 2}}};
    std::string frame = wire::EncodeMessage(Frame(kKvRepairHashReq, payload));
    EXPECT_FALSE(wire::DecodeMessage(frame).ok()) << "duplicate index";
  }
  {
    auto payload = SampleHashPayload();
    payload->hashes = {{5, DigestValue{1, 1}}, {2, DigestValue{2, 2}}};
    std::string frame = wire::EncodeMessage(Frame(kKvRepairHashReq, payload));
    EXPECT_FALSE(wire::DecodeMessage(frame).ok()) << "descending index";
  }
  {
    auto payload = SampleHashPayload();
    payload->level = 3;
    payload->hashes = {{8, DigestValue{1, 1}}};  // 2^3 nodes: max index 7
    std::string frame = wire::EncodeMessage(Frame(kKvRepairHashReq, payload));
    EXPECT_FALSE(wire::DecodeMessage(frame).ok()) << "index out of range";
  }
  {
    auto diff = SampleDiffPayload();
    diff->differing = {6, 1};
    std::string frame = wire::EncodeMessage(Frame(kKvRepairHashResp, diff));
    EXPECT_FALSE(wire::DecodeMessage(frame).ok()) << "descending diff index";
  }
}

}  // namespace
}  // namespace scalecheck
