// FidelityGuard unit tests: the verdict state machine, first-crossing
// bookkeeping, probe classification against machine-model state, and the
// determinism of the serialized report.

#include <gtest/gtest.h>

#include <string>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"
#include "src/sim/fidelity_guard.h"
#include "src/sim/machine.h"
#include "src/sim/simulator.h"

namespace scalecheck {
namespace {

TEST(LatenessTrackerTest, EarlyStartsAreCountedNotFoldedIn) {
  LatenessTracker tracker;
  tracker.Record(VirtualTime::FromNanos(10'000'000'000),
                 VirtualTime::FromNanos(9'000'000'000));  // 1s early
  tracker.Record(VirtualTime::FromNanos(10'000'000'000),
                 VirtualTime::FromNanos(10'000'000'000));  // on time
  tracker.Record(VirtualTime::FromNanos(10'000'000'000),
                 VirtualTime::FromNanos(9'500'000'000));  // 0.5s early
  EXPECT_EQ(tracker.early_count(), 2);
  EXPECT_EQ(tracker.max_early(), VirtualDuration::Seconds(1));
  // The histogram saw all three samples, all clamped to on-time.
  EXPECT_EQ(tracker.count(), 3);
  EXPECT_EQ(tracker.max(), VirtualDuration::Zero());
}

TEST(FidelityGuardTest, VerdictIsMonotonicAndRecordsFirstCrossing) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 1);
  FidelityBudgets budgets;
  FidelityGuard guard(&sim, &machines, budgets);

  guard.ReportViolation("lateness_p99", FidelityVerdict::kDegraded, 0.7, 0.5,
                        VirtualTime::FromNanos(1000));
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kDegraded);
  EXPECT_EQ(guard.report().violated_budget, "lateness_p99");
  EXPECT_EQ(guard.report().first_violation_at.nanos(), 1000);

  // A later degraded crossing of the same budget does not rewind first_at.
  guard.ReportViolation("lateness_p99", FidelityVerdict::kDegraded, 0.9, 0.5,
                        VirtualTime::FromNanos(9000));
  ASSERT_EQ(guard.report().violations.size(), 1u);
  EXPECT_EQ(guard.report().violations[0].first_at.nanos(), 1000);
  EXPECT_DOUBLE_EQ(guard.report().violations[0].observed, 0.7);

  // Escalation to invalid (different budget) flips the verdict...
  guard.ReportViolation("oom", FidelityVerdict::kInvalid, 0.0, 0.0,
                        VirtualTime::FromNanos(5000));
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(guard.report().violated_budget, "oom");
  EXPECT_EQ(guard.report().first_violation_at.nanos(), 5000);

  // ...and nothing ever walks it back down.
  guard.ReportViolation("cpu_utilization", FidelityVerdict::kDegraded, 0.95,
                        0.9, VirtualTime::FromNanos(6000));
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(guard.report().violated_budget, "oom");
  EXPECT_EQ(guard.report().violations.size(), 3u);
}

TEST(FidelityGuardTest, ProbeClassifiesLatenessAgainstBudgets) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 2);
  FidelityBudgets budgets;  // degraded at 500ms p99, invalid at 2s
  FidelityGuard guard(&sim, &machines, budgets);

  // Feed machine 1 a lateness distribution with p99 ~ 1s: degraded only.
  for (int i = 0; i < 200; ++i) {
    machines.at(1).lateness().Record(VirtualTime::FromNanos(0),
                                     VirtualTime::FromNanos(1'000'000'000));
  }
  guard.Probe();
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kDegraded);
  EXPECT_EQ(guard.report().violated_budget, "lateness_p99");

  // Push the same machine past the invalid threshold.
  for (int i = 0; i < 2000; ++i) {
    machines.at(1).lateness().Record(VirtualTime::FromNanos(0),
                                     VirtualTime::FromNanos(3'000'000'000));
  }
  guard.Probe();
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(guard.report().violated_budget, "lateness_p99");
}

TEST(FidelityGuardTest, ProbeFlagsMemoryPressureViaHeadroom) {
  Simulator sim(1);
  MachineSpec spec = MachineSpec::Nome();
  spec.memory_bytes = 1000;
  MachineSet machines(&sim, spec, 1);
  FidelityBudgets budgets;
  FidelityGuard guard(&sim, &machines, budgets);

  // 97% used -> 3% headroom: below the 5% invalid floor.
  ASSERT_TRUE(machines.at(0).memory().Allocate(0, "ballast", 970));
  guard.Probe();
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(guard.report().violated_budget, "memory_headroom");
}

TEST(FidelityGuardTest, ArmedGuardProbesPeriodicallyOnVirtualTime) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 1);
  // Preload a clearly-invalid lateness distribution; the armed timer should
  // detect it at the first probe tick (5 virtual seconds), not at the end.
  for (int i = 0; i < 100; ++i) {
    machines.at(0).lateness().Record(VirtualTime::FromNanos(0),
                                     VirtualTime::FromNanos(30'000'000'000));
  }
  FidelityBudgets budgets;
  FidelityGuard guard(&sim, &machines, budgets);
  guard.Arm();
  sim.ScheduleAt(VirtualTime::FromNanos(VirtualDuration::Seconds(60).nanos()),
                 [] {});
  sim.Run(VirtualTime::FromNanos(VirtualDuration::Seconds(60).nanos()));
  guard.Disarm();
  EXPECT_EQ(guard.report().verdict, FidelityVerdict::kInvalid);
  EXPECT_EQ(guard.report().first_violation_at.nanos(),
            VirtualDuration::Seconds(5).nanos());
}

TEST(FidelityGuardTest, ReportJsonNamesVerdictAndBudget) {
  Simulator sim(1);
  MachineSet machines(&sim, MachineSpec::Nome(), 1);
  FidelityGuard guard(&sim, &machines, FidelityBudgets{});
  guard.ReportViolation("cpu_utilization", FidelityVerdict::kInvalid, 0.99,
                        0.98, VirtualTime::FromNanos(42));
  const std::string json = guard.report().ToJson();
  EXPECT_NE(json.find("\"verdict\":\"invalid\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"violated_budget\":\"cpu_utilization\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"first_violation_at_ns\":42"), std::string::npos) << json;
}

TEST(MemoryModelTest, HeadroomFractionTracksUsage) {
  MemoryModel memory(MemoryModel::Config{1000});
  EXPECT_DOUBLE_EQ(memory.HeadroomFraction(), 1.0);
  ASSERT_TRUE(memory.Allocate(0, "a", 250));
  EXPECT_DOUBLE_EQ(memory.HeadroomFraction(), 0.75);
  ASSERT_TRUE(memory.Allocate(0, "b", 750));
  EXPECT_DOUBLE_EQ(memory.HeadroomFraction(), 0.0);
}

// End-to-end: the guard verdict lands in RunResult/JSON deterministically,
// and a tightened budget flips a previously-ok run to invalid without
// changing anything else about the simulation.
TEST(FidelityGuardTest, RunVerdictIsDeterministicAndBudgetSensitive) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.horizon = VirtualDuration::Seconds(120);

  RunResult a = RunSingle(spec, 24, RunMode::kColocated, 77);
  RunResult b = RunSingle(spec, 24, RunMode::kColocated, 77);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_EQ(a.fidelity.verdict, FidelityVerdict::kOk) << a.fidelity.ToJson();

  BugSpec tight = spec;
  tight.guard.lateness_p99_degraded = VirtualDuration::Nanos(1);
  tight.guard.lateness_p99_invalid = VirtualDuration::Nanos(2);
  RunResult c = RunSingle(tight, 24, RunMode::kColocated, 77);
  EXPECT_EQ(c.fidelity.verdict, FidelityVerdict::kInvalid) << c.fidelity.ToJson();
  EXPECT_EQ(c.fidelity.violated_budget, "lateness_p99");
  // The guard observes; it never perturbs the simulation itself.
  EXPECT_EQ(c.flaps, a.flaps);
  EXPECT_EQ(c.test_duration, a.test_duration);
}

TEST(FidelityGuardTest, DisabledGuardYieldsOkVerdict) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.horizon = VirtualDuration::Seconds(60);
  spec.guard.enabled = false;
  RunResult r = RunSingle(spec, 16, RunMode::kColocated, 5);
  EXPECT_EQ(r.fidelity.verdict, FidelityVerdict::kOk);
  EXPECT_TRUE(r.fidelity.violations.empty());
}

}  // namespace
}  // namespace scalecheck
