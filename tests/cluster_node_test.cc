// Node-level behaviours: recalc coalescing, memory accounting, crash
// semantics, output caching.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

Cluster::Options BaseOptions(int n, WorkloadKind kind) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV2C3831Fix;
  config.run_mode = RunMode::kRealScale;
  config.seed = 99;
  WorkloadSpec wl;
  wl.kind = kind;
  wl.target = n / 2;
  wl.joining_nodes = kind == WorkloadKind::kScaleOut ? 2 : 0;
  wl.horizon = VirtualDuration::Seconds(240);
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

TEST(CalcOutputCacheTest, FindAfterPut) {
  CalcOutputCache cache;
  DigestValue key{1, 2};
  EXPECT_EQ(cache.Find(CalcVersion::kV1PreC3831, key), nullptr);
  CalcOutputCache::Entry entry;
  entry.output = {9};
  entry.work = 123;
  cache.Put(CalcVersion::kV1PreC3831, key, entry);
  const CalcOutputCache::Entry* found = cache.Find(CalcVersion::kV1PreC3831, key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->work, 123);
  // Version is part of the key.
  EXPECT_EQ(cache.Find(CalcVersion::kV2C3831Fix, key), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeTest, RecalcCoalescesWhileInflight) {
  // During decommission many dirty-triggers arrive per calc; invocations must
  // stay far below the trigger count (one queued recalc at a time).
  Cluster cluster(BaseOptions(10, WorkloadKind::kDecommission));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled);
  // At 10 nodes a calc takes ~microseconds, so invocations roughly track
  // triggers; the property that matters: no node ever has two in flight.
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    EXPECT_FALSE(cluster.node(static_cast<NodeId>(i))->recalc_inflight());
  }
  EXPECT_GT(r.calc_invocations, 0);
}

TEST(NodeTest, PartitionServiceMemoryReleasedAfterSettle) {
  // §6 accounting: partition services are allocated while changes are
  // pending and released when they settle.
  Cluster::Options options = BaseOptions(10, WorkloadKind::kScaleOut);
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  ASSERT_TRUE(r.settled);
  // After settling, only runtime + endpoint allocations remain: usage is
  // well below the peak that included partition services.
  int64_t now_used = 0;
  for (size_t i = 0; i < cluster.machines().size(); ++i) {
    now_used += cluster.machines().at(i).memory().used_bytes();
  }
  EXPECT_LT(now_used, r.peak_memory_bytes);
}

TEST(NodeTest, SpaceObliviousAllocationsAreNTimesLarger) {
  // Use the SEDA runtime (small fixed overhead) and vnodes so the §6
  // partition-service allocations dominate the footprint comparison.
  Cluster::Options frugal = BaseOptions(12, WorkloadKind::kScaleOut);
  frugal.config.exec_model = ExecModel::kSedaSingleProcess;
  frugal.config.vnodes_per_node = 16;
  Cluster::Options oblivious = BaseOptions(12, WorkloadKind::kScaleOut);
  oblivious.config.exec_model = ExecModel::kSedaSingleProcess;
  oblivious.config.vnodes_per_node = 16;
  oblivious.config.space_oblivious_rebalance = true;
  RunResult f = Cluster(std::move(frugal)).Run();
  RunResult o = Cluster(std::move(oblivious)).Run();
  EXPECT_GT(o.peak_memory_bytes, f.peak_memory_bytes * 3)
      << o.peak_memory_bytes << " vs " << f.peak_memory_bytes;
}

TEST(NodeTest, CrashedNodeStopsParticipating) {
  Cluster cluster(BaseOptions(10, WorkloadKind::kSteadyState));
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(10),
                              [&cluster] { cluster.node(3)->Crash(); });
  uint64_t sent_at_crash = 0;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(10),
                              [&] { sent_at_crash = 1; });
  RunResult r = cluster.Run();
  EXPECT_TRUE(cluster.node(3)->crashed());
  // Memory is released on crash.
  EXPECT_EQ(cluster.node(3)->machine()->memory().NodeUsage(3), 0);
  // Survivors eventually convict it.
  EXPECT_GE(r.flaps, 9);
  (void)sent_at_crash;
}

TEST(NodeTest, StageTimeoutZeroDisablesShedding) {
  Cluster::Options options = BaseOptions(10, WorkloadKind::kDecommission);
  options.config.gossip_stage_timeout = VirtualDuration::Zero();
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_EQ(r.stage_tasks_dropped, 0u);
  EXPECT_TRUE(r.settled);
}

TEST(NodeTest, TokensAreStableAcrossModes) {
  // GenerateTokens is seed-deterministic, so every mode sees the same ring.
  Cluster a(BaseOptions(8, WorkloadKind::kSteadyState));
  Cluster::Options colo_options = BaseOptions(8, WorkloadKind::kSteadyState);
  colo_options.config.run_mode = RunMode::kColocated;
  Cluster b(std::move(colo_options));
  EXPECT_EQ(a.node(2)->ring().ComputeDigest(), b.node(2)->ring().ComputeDigest());
}

}  // namespace
}  // namespace scalecheck
