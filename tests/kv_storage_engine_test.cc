#include <gtest/gtest.h>

#include "src/kv/storage_engine.h"

namespace scalecheck {
namespace {

TEST(StorageEngineTest, PutThenGet) {
  StorageEngine engine;
  engine.Put(42, "hello", 1);
  WorkUnits work = 0;
  auto value = engine.Get(42, &work);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "hello");
  EXPECT_GT(work, 0);
}

TEST(StorageEngineTest, MissingKeyReturnsNullopt) {
  StorageEngine engine;
  WorkUnits work = 0;
  EXPECT_FALSE(engine.Get(42, &work).has_value());
}

TEST(StorageEngineTest, NewerTimestampWins) {
  StorageEngine engine;
  engine.Put(1, "old", 5);
  engine.Put(1, "new", 6);
  WorkUnits work;
  EXPECT_EQ(*engine.Get(1, &work), "new");
  // Stale write is ignored.
  engine.Put(1, "stale", 2);
  EXPECT_EQ(*engine.Get(1, &work), "new");
}

TEST(StorageEngineTest, FlushMovesMemtableToRun) {
  StorageEngine::Config cfg;
  cfg.memtable_limit = 8;
  StorageEngine engine(cfg);
  for (uint64_t k = 0; k < 8; ++k) {
    engine.Put(k, "v", 1);
  }
  EXPECT_EQ(engine.flushes(), 1u);
  EXPECT_EQ(engine.memtable_entries(), 0u);
  EXPECT_EQ(engine.num_runs(), 1u);
  WorkUnits work;
  EXPECT_TRUE(engine.Get(3, &work).has_value());  // found in the run
}

TEST(StorageEngineTest, CompactionMergesRuns) {
  StorageEngine::Config cfg;
  cfg.memtable_limit = 4;
  cfg.compaction_fanin = 3;
  StorageEngine engine(cfg);
  // Write the same keys repeatedly so compaction must pick newest versions.
  int64_t ts = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 4; ++k) {
      engine.Put(k, "v" + std::to_string(round), ++ts);
    }
  }
  EXPECT_GE(engine.compactions(), 1u);
  EXPECT_EQ(engine.num_runs(), 1u);
  WorkUnits work;
  EXPECT_EQ(*engine.Get(2, &work), "v2");  // newest round survives
}

TEST(StorageEngineTest, MemtableShadowsOlderRuns) {
  StorageEngine::Config cfg;
  cfg.memtable_limit = 4;
  StorageEngine engine(cfg);
  for (uint64_t k = 0; k < 4; ++k) {
    engine.Put(k, "flushed", 1);
  }
  engine.Put(2, "fresh", 2);
  WorkUnits work;
  EXPECT_EQ(*engine.Get(2, &work), "fresh");
  EXPECT_EQ(*engine.Get(3, &work), "flushed");
}

TEST(StorageEngineTest, BytesTrackGrowth) {
  StorageEngine engine;
  int64_t before = engine.ApproxBytes();
  engine.Put(1, std::string(1000, 'x'), 1);
  EXPECT_GT(engine.ApproxBytes(), before + 900);
}

}  // namespace
}  // namespace scalecheck
