#include <gtest/gtest.h>

#include "src/sim/memory_model.h"

namespace scalecheck {
namespace {

MemoryModel SmallMachine() {
  MemoryModel::Config cfg;
  cfg.capacity_bytes = 1000;
  return MemoryModel(cfg);
}

TEST(MemoryModelTest, AllocateAndRelease) {
  MemoryModel mem = SmallMachine();
  EXPECT_TRUE(mem.Allocate(1, "heap", 400));
  EXPECT_TRUE(mem.Allocate(2, "heap", 300));
  EXPECT_EQ(mem.used_bytes(), 700);
  EXPECT_EQ(mem.NodeUsage(1), 400);
  mem.Release(1, "heap", 150);
  EXPECT_EQ(mem.used_bytes(), 550);
  EXPECT_EQ(mem.NodeUsage(1), 250);
  EXPECT_EQ(mem.peak_bytes(), 700);
}

TEST(MemoryModelTest, OomFiresHandlerAndStillRecords) {
  MemoryModel mem = SmallMachine();
  NodeId victim = kInvalidNode;
  mem.set_oom_handler([&](NodeId node, int64_t bytes) { victim = node; });
  EXPECT_TRUE(mem.Allocate(1, "heap", 900));
  EXPECT_FALSE(mem.Allocate(2, "heap", 200));
  EXPECT_EQ(victim, 2);
  EXPECT_TRUE(mem.oom_observed());
  EXPECT_EQ(mem.used_bytes(), 1100);  // the doomed allocation is committed
}

TEST(MemoryModelTest, ReleaseAllFreesEverything) {
  MemoryModel mem = SmallMachine();
  mem.Allocate(1, "a", 100);
  mem.Allocate(1, "b", 200);
  mem.Allocate(2, "a", 50);
  mem.ReleaseAll(1);
  EXPECT_EQ(mem.used_bytes(), 50);
  EXPECT_EQ(mem.NodeUsage(1), 0);
  mem.ReleaseAll(99);  // unknown node is a no-op
  EXPECT_EQ(mem.used_bytes(), 50);
}

TEST(MemoryModelTest, OverReleaseDies) {
  MemoryModel mem = SmallMachine();
  mem.Allocate(1, "a", 100);
  EXPECT_DEATH(mem.Release(1, "a", 200), "over-release");
  EXPECT_DEATH(mem.Release(1, "zzz", 1), "unknown tag");
  EXPECT_DEATH(mem.Release(7, "a", 1), "unknown node");
}

TEST(MemoryModelTest, ZeroTagCleanup) {
  MemoryModel mem = SmallMachine();
  mem.Allocate(1, "a", 100);
  mem.Release(1, "a", 100);
  EXPECT_EQ(mem.NodeUsage(1), 0);
  // Releasing the now-removed tag is an error again.
  EXPECT_DEATH(mem.Release(1, "a", 1), "unknown tag");
}

}  // namespace
}  // namespace scalecheck
