#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/common/strings.h"

namespace scalecheck {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesConcatenation) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    double v = i * 0.37;
    a.Add(v);
    all.Add(v);
  }
  for (int i = 0; i < 30; ++i) {
    double v = 100 - i;
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(3);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(LogHistogram, CountsAndMean) {
  LogHistogram h(1e3, 2.0, 32);
  for (int i = 1; i <= 100; ++i) {
    h.Add(i * 1000.0);
  }
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.mean(), 50500.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.max_value(), 100000.0);
}

TEST(LogHistogram, PercentilesAreMonotone) {
  LogHistogram h(1e3, 1.5, 64);
  for (int i = 0; i < 10000; ++i) {
    h.Add(static_cast<double>((i * 997) % 100000));
  }
  double p50 = h.Percentile(50);
  double p90 = h.Percentile(90);
  double p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max_value() + 1e-9);
}

TEST(LogHistogram, PercentileBoundsRoughlyRight) {
  LogHistogram h(1e3, 1.2, 96);
  for (int i = 1; i <= 1000; ++i) {
    h.Add(static_cast<double>(i));  // all in the first bucket (< 1000? no: 1..1000)
  }
  // Values fall in the first two buckets; p50 must be within [1, 1200].
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1200.0);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(LogHistogram, DurationHelpers) {
  LogHistogram h;
  h.AddDuration(VirtualDuration::Millis(5));
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(h.PercentileDuration(99).nanos(), 1000000);
}

TEST(LogHistogram, SummaryMentionsCount) {
  LogHistogram h;
  h.Add(5.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace scalecheck
