// Pins the bug-study database to the paper's aggregate statements (§2-§4).

#include <gtest/gtest.h>

#include "src/study/bug_database.h"

namespace scalecheck {
namespace {

TEST(BugDatabaseTest, ThirtyEightBugsTotal) {
  EXPECT_EQ(BugDatabase::All().size(), 38u);
}

TEST(BugDatabaseTest, PerSystemCountsMatchPaper) {
  // §2: "9 Cassandra, 5 Couchbase, 2 Hadoop, 9 HBase, 11 HDFS, 1 Riak, and
  // 1 Voldemort scalability bugs".
  auto counts = BugDatabase::CountBySystem();
  EXPECT_EQ(counts[StudySystem::kCassandra], 9);
  EXPECT_EQ(counts[StudySystem::kCouchbase], 5);
  EXPECT_EQ(counts[StudySystem::kHadoop], 2);
  EXPECT_EQ(counts[StudySystem::kHBase], 9);
  EXPECT_EQ(counts[StudySystem::kHdfs], 11);
  EXPECT_EQ(counts[StudySystem::kRiak], 1);
  EXPECT_EQ(counts[StudySystem::kVoldemort], 1);
}

TEST(BugDatabaseTest, RootCauseSplitMatchesFootnote) {
  // §4 footnote: 47% scale-dependent CPU, the other 53% serialization.
  EXPECT_NEAR(BugDatabase::CpuComputationFraction(), 0.47, 0.01);
  size_t cpu = BugDatabase::ByRootCause(RootCauseClass::kScaleDependentComputation).size();
  size_t ser = BugDatabase::ByRootCause(RootCauseClass::kSerializedOnOperations).size();
  EXPECT_EQ(cpu + ser, 38u);
  EXPECT_EQ(cpu, 18u);
}

TEST(BugDatabaseTest, FixTimesMatchSection3) {
  // §3: "took 1 month to fix on average (with a maximum of 5 months)".
  EXPECT_GE(BugDatabase::AverageFixMonths(), 0.8);
  EXPECT_LE(BugDatabase::AverageFixMonths(), 1.5);
  EXPECT_EQ(BugDatabase::MaxFixMonths(), 5);
}

TEST(BugDatabaseTest, PaperNamedCassandraLineagePresent) {
  auto cassandra = BugDatabase::BySystem(StudySystem::kCassandra);
  int named = 0;
  for (const StudyBug& bug : cassandra) {
    if (!bug.curated) {
      ++named;
      EXPECT_EQ(bug.id.rfind("CASSANDRA-", 0), 0u);
    }
  }
  EXPECT_EQ(named, 6);  // 3831, 3881, 5456, 6127, 6345, 6409
}

TEST(BugDatabaseTest, EveryProtocolPathRepresented) {
  // §3: bugs lingered in "bootstrap, scale-out, decommission, rebalance, and
  // failover protocols" plus data paths.
  for (auto p : {ProtocolPath::kBootstrap, ProtocolPath::kScaleOut,
                 ProtocolPath::kDecommission, ProtocolPath::kRebalance,
                 ProtocolPath::kFailover, ProtocolPath::kDataPath}) {
    EXPECT_FALSE(BugDatabase::ByProtocol(p).empty()) << ProtocolPathName(p);
  }
}

TEST(BugDatabaseTest, MostSymptomsNeedLargeScale) {
  // The thesis: most symptoms need >100 nodes — "100-node testing is not
  // enough".
  EXPECT_GT(BugDatabase::FractionRequiringScale(100), 0.75);
  EXPECT_GT(BugDatabase::FractionRequiringScale(8), 0.99);
}

TEST(BugDatabaseTest, EveryBugHasUserVisibleSymptom) {
  // §2: "all caused user-visible impacts".
  for (const StudyBug& bug : BugDatabase::All()) {
    EXPECT_FALSE(bug.symptom.empty()) << bug.id;
    EXPECT_FALSE(bug.complexity.empty()) << bug.id;
    EXPECT_GT(bug.symptom_scale, 0) << bug.id;
  }
}

TEST(BugDatabaseTest, NamesResolve) {
  EXPECT_STREQ(StudySystemName(StudySystem::kHdfs), "HDFS");
  EXPECT_STREQ(RootCauseClassName(RootCauseClass::kSerializedOnOperations),
               "unexpected serialization of O(N) operations");
  EXPECT_STREQ(ProtocolPathName(ProtocolPath::kDecommission), "decommission");
}

}  // namespace
}  // namespace scalecheck
