// End-to-end finder behaviour: fitted classes, PIL-safety verdicts, and the
// C6127 path-dependence result.

#include <gtest/gtest.h>

#include <map>

#include "src/sfind/finder.h"

namespace scalecheck {
namespace {

std::map<std::string, OffenderReport> RunFinder(SfindOptions options) {
  OffendingFunctionFinder finder(options);
  std::map<std::string, OffenderReport> by_name;
  for (OffenderReport& r : finder.Run()) {
    by_name.emplace(r.name, std::move(r));
  }
  return by_name;
}

class FinderFixture : public ::testing::Test {
 protected:
  static const std::map<std::string, OffenderReport>& Reports() {
    static const auto* reports = [] {
      SfindOptions options;
      options.calc_version = CalcVersion::kV1PreC3831;
      options.scales = {8, 12, 16, 24};
      return new std::map<std::string, OffenderReport>(RunFinder(options));
    }();
    return *reports;
  }
};

TEST_F(FinderFixture, V1CalculatorFlaggedOffendingAndPilSafe) {
  const auto& reports = Reports();
  auto it = reports.find("calculatePendingRanges/v1");
  ASSERT_NE(it, reports.end());
  const OffenderReport& r = it->second;
  EXPECT_EQ(r.scale_class, ScaleClass::kOffendingSuperlinear);
  EXPECT_GT(r.fit.exponent, 2.5);  // cubic-with-M fits ~3-4
  EXPECT_GT(r.fit.r_squared, 0.9);
  EXPECT_TRUE(r.pil_safe);
  EXPECT_TRUE(r.TakeThePil());
  EXPECT_GT(r.predicted_seconds_at_target, 1.0);  // the red flag at N=256
}

TEST_F(FinderFixture, GossipFunctionsLinearAndUnsafe) {
  const auto& reports = Reports();
  for (const char* name : {"gossip.handleSynDigests", "gossip.applyEndpointStates"}) {
    auto it = reports.find(name);
    ASSERT_NE(it, reports.end()) << name;
    EXPECT_NE(it->second.scale_class, ScaleClass::kOffendingSuperlinear) << name;
    EXPECT_FALSE(it->second.pil_safe) << name;
    EXPECT_TRUE(it->second.effects.network_messages) << name;
    EXPECT_FALSE(it->second.TakeThePil()) << name;
  }
}

TEST_F(FinderFixture, FailureDetectorSweepNotMemoizable) {
  const auto& reports = Reports();
  auto it = reports.find("failureDetector.interpretAll");
  ASSERT_NE(it, reports.end());
  EXPECT_TRUE(it->second.effects.nondeterministic);
  EXPECT_FALSE(it->second.TakeThePil());
}

TEST_F(FinderFixture, BootstrapPathReachedOnlyByFreshBootstrap) {
  const auto& reports = Reports();
  auto it = reports.find("freshRingConstruction/C6127");
  ASSERT_NE(it, reports.end());
  EXPECT_EQ(it->second.reached_by,
            std::vector<std::string>{"bootstrap-fresh"});
  // The regular calculator is reached by every workload.
  auto calc = reports.find("calculatePendingRanges/v1");
  ASSERT_NE(calc, reports.end());
  EXPECT_EQ(calc->second.reached_by.size(), 3u);
}

TEST_F(FinderFixture, ReportRenders) {
  std::vector<OffenderReport> list;
  for (const auto& [name, r] : Reports()) {
    list.push_back(r);
  }
  std::string rendered = OffendingFunctionFinder::RenderReport(list, 256);
  EXPECT_NE(rendered.find("TAKE THE PIL"), std::string::npos);
  EXPECT_NE(rendered.find("calculatePendingRanges/v1"), std::string::npos);
}

TEST(FinderOptions, RequiresTwoScales) {
  SfindOptions options;
  options.scales = {8};
  EXPECT_DEATH(OffendingFunctionFinder finder(options), "2 scales");
}

}  // namespace
}  // namespace scalecheck
