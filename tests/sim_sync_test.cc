#include <gtest/gtest.h>

#include <vector>

#include "src/sim/sync.h"

namespace scalecheck {
namespace {

TEST(SimMutexTest, FreeAcquireGrantsSynchronously) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  bool granted = false;
  mutex.Acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_TRUE(mutex.locked());
  mutex.Release();
  EXPECT_FALSE(mutex.locked());
}

TEST(SimMutexTest, WaitersGrantedFifo) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  std::vector<int> order;
  mutex.Acquire([&] { order.push_back(0); });
  mutex.Acquire([&] { order.push_back(1); });
  mutex.Acquire([&] { order.push_back(2); });
  EXPECT_EQ(mutex.waiters(), 2u);
  mutex.Release();
  sim.RunUntilIdle();  // grant happens via a zero-delay event
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  mutex.Release();
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  mutex.Release();
}

TEST(SimMutexTest, HoldAndWaitStatsAccumulate) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  mutex.Acquire([] {});
  bool second_granted = false;
  mutex.Acquire([&] { second_granted = true; });
  sim.ScheduleAfter(VirtualDuration::Seconds(3), [&] { mutex.Release(); });
  sim.RunUntilIdle();
  EXPECT_TRUE(second_granted);
  EXPECT_NEAR(mutex.hold_seconds().max(), 3.0, 1e-6);
  EXPECT_NEAR(mutex.wait_seconds().max(), 3.0, 1e-6);
  mutex.Release();
}

TEST(SimMutexTest, ReleaseOfUnheldMutexDies) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  EXPECT_DEATH(mutex.Release(), "release of unheld");
}

TEST(SimMutexTest, DeepConvoyDoesNotOverflowStack) {
  Simulator sim(1);
  SimMutex mutex(&sim, "m");
  int granted = 0;
  // 50k waiters that immediately release; grants chain through the event
  // queue, not the native stack.
  mutex.Acquire([&] { ++granted; });
  for (int i = 0; i < 50000; ++i) {
    mutex.Acquire([&] {
      ++granted;
      mutex.Release();
    });
  }
  mutex.Release();
  sim.RunUntilIdle();
  EXPECT_EQ(granted, 50001);
}

}  // namespace
}  // namespace scalecheck
