// EndpointStateStore vs std::map equivalence fuzz.
//
// The SoA store replaced std::map<NodeId, EndpointState> underneath
// Gossiper; everything downstream (merge-walk order, digest refresh, JSON
// export) assumes it behaves exactly like the map did. This test drives
// both containers with the same seeded random operation stream and checks
// full-state equivalence — contents AND iteration order — after every
// mutation batch.

#include "src/gossip/endpoint_store.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/gossip/endpoint_state.h"

namespace scalecheck {
namespace {

EndpointState MakeState(int64_t generation, int64_t version) {
  EndpointState state(generation);
  state.mutable_heartbeat().version = version;
  VersionedValue status;
  status.version = version;
  status.status = StatusKind::kNormal;
  state.Set(ApplicationStateKey::kStatus, status);
  return state;
}

void ExpectEquivalent(const EndpointStateStore& store,
                      const std::map<NodeId, EndpointState>& model) {
  ASSERT_EQ(store.size(), model.size());
  // Iteration must yield the same (id, state) sequence in the same order.
  auto it = model.begin();
  for (const auto& [id, state] : store) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(id, it->first);
    EXPECT_EQ(state.heartbeat().generation, it->second.heartbeat().generation);
    EXPECT_EQ(state.heartbeat().version, it->second.heartbeat().version);
    EXPECT_EQ(state.MaxVersion(), it->second.MaxVersion());
    ++it;
  }
  EXPECT_EQ(it, model.end());
  // Point lookups agree, including misses.
  for (const auto& [id, state] : model) {
    EXPECT_EQ(store.count(id), 1u);
    size_t index = store.IndexOf(id);
    ASSERT_NE(index, EndpointStateStore::kNotFound);
    EXPECT_EQ(store.IdAt(index), id);
    EXPECT_EQ(store.at(id).heartbeat().version, state.heartbeat().version);
  }
}

TEST(EndpointStateStore, FuzzEquivalentToStdMap) {
  Rng rng(0xfeedbeef);
  EndpointStateStore store;
  std::map<NodeId, EndpointState> model;

  for (int step = 0; step < 4000; ++step) {
    NodeId id = static_cast<NodeId>(rng.Next() % 300);
    switch (rng.Next() % 4) {
      case 0: {  // insert if absent
        if (model.count(id) == 0) {
          int64_t gen = static_cast<int64_t>(rng.Next() % 1000);
          int64_t ver = static_cast<int64_t>(rng.Next() % 100000);
          store.Insert(id, MakeState(gen, ver));
          model.emplace(id, MakeState(gen, ver));
        }
        break;
      }
      case 1: {  // assign (insert-or-overwrite)
        int64_t gen = static_cast<int64_t>(rng.Next() % 1000);
        int64_t ver = static_cast<int64_t>(rng.Next() % 100000);
        auto [index, inserted] = store.Assign(id, MakeState(gen, ver));
        bool model_inserted = model.count(id) == 0;
        model[id] = MakeState(gen, ver);
        EXPECT_EQ(inserted, model_inserted);
        EXPECT_EQ(store.IdAt(index), id);
        break;
      }
      case 2: {  // erase
        bool erased = store.Erase(id);
        EXPECT_EQ(erased, model.erase(id) > 0);
        break;
      }
      case 3: {  // in-place mutation through StateAt
        if (model.count(id) > 0) {
          size_t index = store.IndexOf(id);
          ASSERT_NE(index, EndpointStateStore::kNotFound);
          int64_t ver = static_cast<int64_t>(rng.Next() % 100000);
          store.StateAt(index).mutable_heartbeat().version = ver;
          model.at(id).mutable_heartbeat().version = ver;
        }
        break;
      }
    }
    if (step % 200 == 0) {
      ExpectEquivalent(store, model);
    }
  }
  ExpectEquivalent(store, model);
}

// IndexOf's dense-id fast path (index == id once the table is full) must
// agree with binary search even while the table is sparse or shifted.
TEST(EndpointStateStore, IndexOfFastPathMatchesSearch) {
  EndpointStateStore store;
  for (NodeId id : {5, 1, 9, 3, 7}) {
    store.Insert(id, MakeState(1, id));
  }
  // Sparse: no index equals its id except by coincidence; all must resolve.
  for (NodeId id : {1, 3, 5, 7, 9}) {
    size_t index = store.IndexOf(id);
    ASSERT_NE(index, EndpointStateStore::kNotFound);
    EXPECT_EQ(store.IdAt(index), id);
  }
  for (NodeId id : {0, 2, 4, 6, 8, 10}) {
    EXPECT_EQ(store.IndexOf(id), EndpointStateStore::kNotFound);
  }
  // Dense 0..N-1: the guess path triggers for every id.
  EndpointStateStore dense;
  for (NodeId id = 0; id < 64; ++id) {
    dense.Insert(id, MakeState(1, id));
  }
  for (NodeId id = 0; id < 64; ++id) {
    EXPECT_EQ(dense.IndexOf(id), static_cast<size_t>(id));
  }
}

TEST(EndpointStateStore, InsertShiftsLaterIndices) {
  EndpointStateStore store;
  store.Insert(10, MakeState(1, 10));
  store.Insert(30, MakeState(1, 30));
  EXPECT_EQ(store.IndexOf(30), 1u);
  store.Insert(20, MakeState(1, 20));
  EXPECT_EQ(store.IndexOf(10), 0u);
  EXPECT_EQ(store.IndexOf(20), 1u);
  EXPECT_EQ(store.IndexOf(30), 2u);
}

}  // namespace
}  // namespace scalecheck
