// ChaosSearch end to end: the seed-deterministic searcher finds the planted
// left-join bug, the ddmin minimizer shrinks the violating plan to a locally
// minimal reproducer, and the repro artifact replays to the byte-identical
// invariant report — at any --jobs setting.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/faults/fault_search.h"
#include "src/scalecheck/bug_catalog.h"

namespace scalecheck {
namespace {

FaultSearchConfig SmokeConfig() {
  FaultSearchConfig config;
  config.spec = BugCatalog::Get("C3831");
  config.spec.calc_version = CalcVersion::kV3C3881Fix;
  config.spec.check.plant_left_join_bug = true;
  config.nodes = 12;
  config.budget = 8;
  config.generation_size = 8;
  return config;
}

// The search is expensive enough to run once and interrogate from several
// tests; determinism (proved separately below) makes the sharing sound.
const FaultSearchReport& SharedReport() {
  static const FaultSearchReport* report = [] {
    FaultSearchConfig config = SmokeConfig();
    config.jobs = 1;
    return new FaultSearchReport(FaultSearch(config).Run());
  }();
  return *report;
}

bool PlanViolates(const FaultSearchConfig& config, const FaultPlan& plan,
                  const std::vector<std::string>& expected) {
  BugSpec spec = config.spec;
  spec.fault_plan = "none";
  spec.custom_faults = plan;
  RunResult result = RunSingle(spec, config.nodes, config.mode, config.seed);
  std::vector<std::string> names = result.invariants.ViolatedNames();
  std::set<std::string> got(names.begin(), names.end());
  for (const std::string& name : expected) {
    if (got.count(name) == 0) return false;
  }
  return true;
}

TEST(RunModeNameTest, RoundTripsAndRejectsUnknown) {
  for (RunMode mode : {RunMode::kRealScale, RunMode::kColocated,
                       RunMode::kMemoize, RunMode::kPilReplay}) {
    Result<RunMode> back = RunModeFromName(RunModeName(mode));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), mode);
  }
  EXPECT_FALSE(RunModeFromName("Hybrid").ok());
  EXPECT_FALSE(RunModeFromName("").ok());
}

TEST(RunExitCodeTest, DistinguishesViolationFromFidelity) {
  RunResult clean;
  EXPECT_EQ(RunExitCode(clean), 0);

  RunResult invalid;
  invalid.fidelity.verdict = FidelityVerdict::kInvalid;
  EXPECT_EQ(RunExitCode(invalid), 3);

  RunResult violated;
  violated.invariants.checked = true;
  violated.invariants.violations.push_back(
      {"zombie-endpoint", VirtualTime(), "detail", 1});
  EXPECT_EQ(RunExitCode(violated), 4);

  // A broken cluster outranks a distrusted measurement of it.
  RunResult both = violated;
  both.fidelity.verdict = FidelityVerdict::kInvalid;
  EXPECT_EQ(RunExitCode(both), 4);

  // Unchecked violations do not exist; the disabled checker never exits 4.
  RunResult unchecked;
  unchecked.invariants.checked = false;
  EXPECT_EQ(RunExitCode(unchecked), 0);
}

TEST(FaultSearchTest, FindsThePlantedViolationDeterministically) {
  const FaultSearchReport& report = SharedReport();
  ASSERT_TRUE(report.found_violation);
  EXPECT_GE(report.violating_index, 0);
  ASSERT_EQ(report.violated.size(), 1u);
  EXPECT_EQ(report.violated[0], "zombie-endpoint");
  EXPECT_FALSE(report.violating_plan.events.empty());
  EXPECT_FALSE(report.candidates.empty());
  EXPECT_GE(report.best_index, 0);
  EXPECT_FALSE(report.repro_json.empty());
}

TEST(FaultSearchTest, JobsNeverChangeAByte) {
  FaultSearchConfig config = SmokeConfig();
  config.jobs = 4;
  FaultSearchReport parallel = FaultSearch(config).Run();
  EXPECT_EQ(parallel.ToJson(), SharedReport().ToJson());
}

TEST(FaultSearchTest, MinimizedPlanIsLocallyMinimal) {
  const FaultSearchReport& report = SharedReport();
  ASSERT_TRUE(report.found_violation);
  const FaultPlan& minimized = report.minimized_plan;
  ASSERT_FALSE(minimized.events.empty());
  EXPECT_LE(minimized.events.size(), report.violating_plan.events.size());
  EXPECT_GT(report.minimize_runs, 0);

  FaultSearchConfig config = SmokeConfig();
  // The minimized plan still reproduces the violation...
  EXPECT_TRUE(PlanViolates(config, minimized, report.violated));
  // ...and removing any single remaining event loses it (ddmin's 1-minimal
  // guarantee).
  for (size_t skip = 0; skip < minimized.events.size(); ++skip) {
    FaultPlan smaller;
    smaller.name = minimized.name;
    for (size_t i = 0; i < minimized.events.size(); ++i) {
      if (i != skip) smaller.events.push_back(minimized.events[i]);
    }
    EXPECT_FALSE(PlanViolates(config, smaller, report.violated))
        << "event " << skip << " is redundant";
  }
}

TEST(FaultSearchTest, ReproArtifactReplaysByteIdentically) {
  const FaultSearchReport& report = SharedReport();
  ASSERT_FALSE(report.repro_json.empty());
  Result<ReproReplay> replay = ReplayRepro(report.repro_json);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().bug_id, "C3831");
  EXPECT_TRUE(replay.value().invariants_match);
  EXPECT_EQ(replay.value().expected_violated, report.violated);
  EXPECT_EQ(replay.value().result.invariants.ViolatedNames(), report.violated);
  EXPECT_EQ(RunExitCode(replay.value().result), 4);

  // Replaying twice is byte-identical (the artifact pins everything).
  Result<ReproReplay> again = ReplayRepro(report.repro_json);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().result.ToJson(), replay.value().result.ToJson());
}

TEST(FaultSearchTest, CorruptArtifactsAreRejectedNotGuessed) {
  const std::string good = SharedReport().repro_json;
  ASSERT_TRUE(ReplayRepro(good).ok());

  auto replace = [&good](const std::string& from, const std::string& to) {
    std::string s = good;
    auto pos = s.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    s.replace(pos, from.size(), to);
    return s;
  };

  // Future format: refuse rather than misinterpret.
  EXPECT_FALSE(
      ReplayRepro(replace("scalecheck-repro-v1", "scalecheck-repro-v2")).ok());
  // Unknown scenario id.
  EXPECT_FALSE(ReplayRepro(replace("\"bug\":\"C3831\"", "\"bug\":\"C9999\"")).ok());
  // Unknown key anywhere in the artifact.
  EXPECT_FALSE(
      ReplayRepro(replace("\"nodes\":", "\"extra\":0,\"nodes\":")).ok());
  // Missing key.
  {
    std::string s = good;
    auto pos = s.find("\"seed\":");
    ASSERT_NE(pos, std::string::npos);
    auto end = s.find(',', pos);
    s.erase(pos, end - pos + 1);
    EXPECT_FALSE(ReplayRepro(s).ok());
  }
  // Truncation.
  EXPECT_FALSE(ReplayRepro(good.substr(0, good.size() / 2)).ok());
  EXPECT_FALSE(ReplayRepro("").ok());
}

TEST(FaultSearchTest, NoViolationWithoutThePlantedBug) {
  // The same schedule space against the *correct* recovery path: the search
  // exhausts its budget without a violation and reports so.
  FaultSearchConfig config = SmokeConfig();
  config.spec.check.plant_left_join_bug = false;
  config.budget = 4;
  config.generation_size = 4;
  FaultSearchReport report = FaultSearch(config).Run();
  EXPECT_FALSE(report.found_violation);
  EXPECT_EQ(report.violating_index, -1);
  EXPECT_TRUE(report.repro_json.empty());
  EXPECT_EQ(static_cast<int>(report.candidates.size()), 4);
}

}  // namespace
}  // namespace scalecheck
