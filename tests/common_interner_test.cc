// EndpointInterner: dense ids handed out in first-intern order, identical
// across runs — the determinism contract the whole EndpointId scheme rests
// on (ids must never depend on hash-table iteration order).

#include "src/common/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace scalecheck {
namespace {

TEST(EndpointInterner, AssignsDenseIdsInInsertionOrder) {
  EndpointInterner interner;
  EXPECT_EQ(interner.Intern("node-0"), 0);
  EXPECT_EQ(interner.Intern("node-1"), 1);
  EXPECT_EQ(interner.Intern("node-2"), 2);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(EndpointInterner, ReinternReturnsExistingId) {
  EndpointInterner interner;
  EndpointId a = interner.Intern("alpha");
  EndpointId b = interner.Intern("beta");
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(EndpointInterner, NameOfRoundTrips) {
  EndpointInterner interner;
  std::vector<std::string> names = {"127.0.0.1#0", "127.0.0.1#1", "node-x"};
  for (const std::string& name : names) {
    EndpointId id = interner.Intern(name);
    EXPECT_EQ(interner.NameOf(id), name);
  }
}

TEST(EndpointInterner, LookupDoesNotIntern) {
  EndpointInterner interner;
  interner.Intern("known");
  EndpointId id = kInvalidNode;
  EXPECT_TRUE(interner.Lookup("known", &id));
  EXPECT_EQ(id, 0);
  EXPECT_FALSE(interner.Lookup("unknown", &id));
  EXPECT_EQ(interner.size(), 1u) << "Lookup must not mutate the table";
}

// The core determinism property: two interners fed the same name sequence
// (regardless of interleaved lookups and duplicate interns) agree on every
// id. This is what makes EndpointId==NodeId reproducible across runs.
TEST(EndpointInterner, IdenticalSequencesYieldIdenticalIds) {
  std::vector<std::string> sequence;
  for (int i = 0; i < 500; ++i) {
    sequence.push_back("node-" + std::to_string(i % 200));  // lots of dups
  }
  EndpointInterner a, b;
  std::vector<EndpointId> ids_a, ids_b;
  for (const std::string& name : sequence) {
    ids_a.push_back(a.Intern(name));
  }
  for (const std::string& name : sequence) {
    EndpointId scratch;
    b.Lookup(name, &scratch);  // interleaved lookups must not perturb ids
    ids_b.push_back(b.Intern(name));
  }
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(b.size(), 200u);
  for (EndpointId id = 0; id < static_cast<EndpointId>(a.size()); ++id) {
    EXPECT_EQ(a.NameOf(id), b.NameOf(id));
  }
}

TEST(EndpointInterner, ApproxBytesGrowsWithContent) {
  EndpointInterner interner;
  size_t empty = interner.ApproxBytes();
  for (int i = 0; i < 100; ++i) {
    interner.Intern("endpoint-with-a-reasonably-long-name-" + std::to_string(i));
  }
  EXPECT_GT(interner.ApproxBytes(), empty);
  EXPECT_GT(interner.ApproxBytes(), 100u * 8u);
}

}  // namespace
}  // namespace scalecheck
