// Anti-entropy repair riding on a live cluster (src/kv/anti_entropy.h):
// injected divergence converging with hints disabled, the crash-mid-repair
// abort accounting (sessions against a dead peer are abandoned, never
// retried forever), the planted repair-storm bug tripping the
// replica-convergence budget facet, and the RunResult counter exports.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/kv/anti_entropy.h"
#include "src/kv/kv_service.h"

namespace scalecheck {
namespace {

Cluster::Options RepairKvCluster(int n, VirtualDuration horizon) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.run_mode = RunMode::kRealScale;
  config.enable_kv = true;
  config.kv_wal = true;
  config.kv_repair = true;
  config.seed = 31337;
  WorkloadSpec wl;
  wl.kind = WorkloadKind::kSteadyState;
  wl.target = n / 2;
  wl.horizon = horizon;
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

bool Violated(const RunResult& r, const std::string& name) {
  for (const InvariantViolation& v : r.invariants.violations) {
    if (v.invariant == name) {
      return true;
    }
  }
  return false;
}

// Divergence neither hinted handoff nor read repair can fix (hints disabled,
// no client reads): a replica that missed a write while crashed must be
// converged by anti-entropy alone — and the replica-convergence invariant,
// armed by kv_repair, must come back clean.
TEST(KvRepairTest, InjectedDivergenceConvergesViaAntiEntropy) {
  Cluster::Options options = RepairKvCluster(8, VirtualDuration::Seconds(200));
  options.config.kv_hint_limit = 0;  // hints off: anti-entropy or nothing
  Cluster cluster(std::move(options));
  KvOutcome outcome = KvOutcome::kTimeout;
  NodeId victim = kInvalidNode;
  NodeId coordinator = kInvalidNode;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(99), 3);
    ASSERT_EQ(replicas.size(), 3u);
    victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    for (NodeId replica : replicas) {
      if (replica != victim) {
        coordinator = replica;
        break;
      }
    }
    cluster.node(victim)->Crash();
  });
  // Write long after the crash (failure detector has convicted the victim):
  // QUORUM succeeds on the live pair, and with hints disabled the victim has
  // no other way back than a Merkle diff.
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(50), [&] {
    cluster.node(coordinator)
        ->kv()
        ->Write(99, "repaired", [&](KvOutcome o, std::string) { outcome = o; });
  });
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(80), [&] {
    cluster.node(victim)->Restart({0, 1, 2});
  });
  RunResult r = cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  // The victim converged to the exact acked version, via a repair stream.
  int64_t repaired = cluster.node(victim)->kv()->storage().TimestampOf(99);
  EXPECT_GT(repaired, 0);
  EXPECT_EQ(repaired,
            cluster.node(coordinator)->kv()->storage().TimestampOf(99));
  EXPECT_GE(cluster.node(victim)->kv()->stats().repair_keys_fixed, 1);
  EXPECT_EQ(r.kv_hints_replayed, 0);
  // Invariant verdict: repair is on, so replica-convergence probed — and
  // holds, because the diff was streamed within the grace window.
  EXPECT_FALSE(Violated(r, "replica-convergence")) << r.invariants.ToJson();
  // Counters surface in RunResult for the experiment tables.
  EXPECT_GE(r.kv_repair_sessions, 1);
  EXPECT_GE(r.kv_repair_bytes_streamed, 1);
  EXPECT_GE(r.kv_repair_keys_fixed, 1);
}

// The crash-mid-repair regression (satellite fix): sessions whose peer dies
// under them are aborted and counted — kv_repair_aborted moves, and no node
// is left holding a stuck session at run end.
TEST(KvRepairTest, CrashMidRepairAbortsSessionInsteadOfRetryingForever) {
  Cluster::Options options = RepairKvCluster(8, VirtualDuration::Seconds(180));
  // Aggressive scheduling: a tick a second and a short session timeout, so
  // several sessions head for the victim inside the conviction window.
  options.config.kv_repair_interval = VirtualDuration::Seconds(1);
  options.config.kv_repair_session_timeout = VirtualDuration::Seconds(5);
  options.kv_ops_per_second = 20;  // some data so sessions have work
  Cluster cluster(std::move(options));
  NodeId victim = 3;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(40), [&] {
    cluster.node(victim)->Crash();
  });
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(100), [&] {
    cluster.node(victim)->Restart({0, 1, 2});
  });
  RunResult r = cluster.Run();
  // Somebody was mid-session (or about to time out) when the victim died.
  EXPECT_GE(r.kv_repair_aborted, 1);
  // Nobody retries forever: every session either finished or was abandoned.
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    const KvService* kv = cluster.node(static_cast<NodeId>(i))->kv();
    ASSERT_NE(kv, nullptr);
    if (kv->repair() != nullptr) {
      EXPECT_EQ(kv->repair()->active_sessions(), 0u) << "node " << i;
    }
  }
}

// The planted storm: rate limiter, session cap, and pressure yield all
// ignored — every tick streams the full shared range to every co-replica.
// The budget facet of replica-convergence must flag it.
TEST(KvRepairTest, PlantedRepairStormViolatesReplicaConvergence) {
  Cluster::Options options = RepairKvCluster(8, VirtualDuration::Seconds(150));
  options.config.check.plant_repair_storm = true;
  options.config.kv_repair_rate_bytes = 4096;  // the budget the storm ignores
  options.kv_ops_per_second = 200;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_TRUE(Violated(r, "replica-convergence")) << r.invariants.ToJson();
  // The storm's byte volume is visible in the exported counters.
  EXPECT_GT(r.kv_repair_bytes_streamed,
            4096 * 150 * 2 + 4 * 1024 * 1024);
  EXPECT_GT(r.kv_repair_sessions, 0);
}

// Same cluster, same load, throttle honored: no violation, and the repair
// traffic stays inside the byte budget the invariant enforces.
TEST(KvRepairTest, ThrottledRepairStaysInsideBudget) {
  Cluster::Options options = RepairKvCluster(8, VirtualDuration::Seconds(150));
  options.config.kv_repair_rate_bytes = 4096;
  options.kv_ops_per_second = 200;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_FALSE(Violated(r, "replica-convergence")) << r.invariants.ToJson();
  EXPECT_GE(r.kv_repair_sessions, 1);
}

// Repair off: no AntiEntropy instance, all four counters stay zero — the
// golden-compatibility contract for pre-repair configurations.
TEST(KvRepairTest, CountersZeroWithRepairOff) {
  Cluster::Options options = RepairKvCluster(8, VirtualDuration::Seconds(90));
  options.config.kv_repair = false;
  options.kv_ops_per_second = 50;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_EQ(r.kv_repair_sessions, 0);
  EXPECT_EQ(r.kv_repair_bytes_streamed, 0);
  EXPECT_EQ(r.kv_repair_keys_fixed, 0);
  EXPECT_EQ(r.kv_repair_aborted, 0);
  for (size_t i = 0; i < cluster.total_nodes(); ++i) {
    EXPECT_EQ(cluster.node(static_cast<NodeId>(i))->kv()->repair(), nullptr);
  }
}

// The zipfian key knob is seed-deterministic: two identical runs produce
// byte-identical JSON, and the skew actually concentrates traffic (far
// fewer distinct keys than the uniform run touches).
TEST(KvRepairTest, ZipfKeyDistributionIsDeterministic) {
  auto make = [] {
    Cluster::Options options =
        RepairKvCluster(8, VirtualDuration::Seconds(90));
    options.config.kv_repair = false;
    options.kv_ops_per_second = 100;
    options.kv_key_space = 1000;
    options.kv_key_dist = KvKeyDist::kZipf;
    options.kv_zipf_s = 1.2;
    return options;
  };
  Cluster first(make());
  RunResult a = first.Run();
  Cluster second(make());
  RunResult b = second.Run();
  EXPECT_GT(a.kv_issued, 0);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

}  // namespace
}  // namespace scalecheck
