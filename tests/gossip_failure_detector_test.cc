#include <gtest/gtest.h>

#include "src/gossip/failure_detector.h"

namespace scalecheck {
namespace {

VirtualTime At(double s) {
  return VirtualTime::Zero() + VirtualDuration::FromSecondsF(s);
}

PhiAccrualFailureDetector MakeFd(double threshold = 8.0) {
  PhiAccrualFailureDetector::Config cfg;
  cfg.threshold = threshold;
  return PhiAccrualFailureDetector(cfg);
}

TEST(ArrivalWindow, PhiZeroBeforeArrivals) {
  ArrivalWindow w(100, VirtualDuration::Seconds(1));
  EXPECT_DOUBLE_EQ(w.Phi(At(100)), 0.0);
  EXPECT_FALSE(w.has_arrivals());
}

TEST(ArrivalWindow, PhiGrowsMonotonicallyInSilence) {
  ArrivalWindow w(100, VirtualDuration::Seconds(1));
  w.Add(At(0));
  w.Add(At(1));
  double last = 0;
  for (int s = 2; s < 40; ++s) {
    double phi = w.Phi(At(s));
    EXPECT_GT(phi, last);
    last = phi;
  }
}

TEST(ArrivalWindow, PhiResetsOnArrival) {
  ArrivalWindow w(100, VirtualDuration::Seconds(1));
  w.Add(At(0));
  w.Add(At(1));
  double before = w.Phi(At(20));
  w.Add(At(20));
  EXPECT_LT(w.Phi(At(20.5)), before);
}

TEST(ArrivalWindow, KnownPhiValue) {
  // Mean interval primed at exactly 1s: phi(t) = 0.4343 * elapsed.
  ArrivalWindow w(100, VirtualDuration::Seconds(1));
  w.Add(At(0));
  w.Add(At(1));  // interval sample: 1s, window mean stays 1s
  EXPECT_NEAR(w.Phi(At(1 + 10)), 4.343, 0.01);
  EXPECT_NEAR(w.MeanIntervalSeconds(), 1.0, 1e-9);
}

TEST(ArrivalWindow, WindowAdaptsToSlowerIntervals) {
  ArrivalWindow w(4, VirtualDuration::Seconds(1));
  double t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 5.0;  // consistently slow heartbeats
    w.Add(At(t));
  }
  EXPECT_NEAR(w.MeanIntervalSeconds(), 5.0, 1e-9);
  // 10s of silence is only 2 mean intervals now: low suspicion.
  EXPECT_LT(w.Phi(At(t + 10)), 1.0);
}

TEST(PhiAccrualFd, ConvictsAfterLongSilence) {
  PhiAccrualFailureDetector fd = MakeFd();
  fd.Report(7, At(0));
  fd.Report(7, At(1));
  fd.Report(7, At(2));
  EXPECT_FALSE(fd.IsConvicted(7, At(5)));
  // phi crosses 8 at elapsed ~ 8/0.4343 ~ 18.4 mean intervals.
  EXPECT_TRUE(fd.IsConvicted(7, At(2 + 20)));
}

TEST(PhiAccrualFd, UnknownEndpointNeverConvicted) {
  PhiAccrualFailureDetector fd = MakeFd();
  EXPECT_DOUBLE_EQ(fd.Phi(42, At(1000)), 0.0);
  EXPECT_FALSE(fd.IsConvicted(42, At(1000)));
  EXPECT_FALSE(fd.IsMonitoring(42));
}

TEST(PhiAccrualFd, ForgetStopsMonitoring) {
  PhiAccrualFailureDetector fd = MakeFd();
  fd.Report(7, At(0));
  EXPECT_TRUE(fd.IsMonitoring(7));
  fd.Forget(7);
  EXPECT_FALSE(fd.IsMonitoring(7));
  EXPECT_DOUBLE_EQ(fd.Phi(7, At(50)), 0.0);
}

TEST(PhiAccrualFd, DuplicateReportsWithinMinIntervalIgnored) {
  PhiAccrualFailureDetector fd = MakeFd();
  fd.Report(7, At(0));
  fd.Report(7, At(1));
  double phi_before = fd.Phi(7, At(3));
  // A burst of reports 1ms apart must not poison the window mean.
  fd.Report(7, At(3));
  fd.Report(7, At(3.001));
  fd.Report(7, At(3.002));
  EXPECT_GT(fd.Phi(7, At(6)), phi_before * 0.5);
}

class PhiThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(PhiThresholdTest, ConvictionTimeScalesWithThreshold) {
  double threshold = GetParam();
  PhiAccrualFailureDetector::Config cfg;
  cfg.threshold = threshold;
  PhiAccrualFailureDetector fd(cfg);
  fd.Report(1, At(0));
  fd.Report(1, At(1));
  // Mean interval 1s: conviction at elapsed = threshold / 0.4343.
  double conviction_elapsed = threshold / 0.4342944819032518;
  EXPECT_FALSE(fd.IsConvicted(1, At(1 + conviction_elapsed * 0.95)));
  EXPECT_TRUE(fd.IsConvicted(1, At(1 + conviction_elapsed * 1.05)));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PhiThresholdTest,
                         ::testing::Values(2.0, 5.0, 8.0, 12.0, 16.0));

}  // namespace
}  // namespace scalecheck
