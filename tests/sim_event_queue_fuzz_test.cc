// Randomized differential test: EventQueue (4-ary heap + slab + flat id map)
// against a deliberately naive reference (sorted scan over a flat vector).
// Any divergence in pop order, sizes, or cancel results is a bug in the
// engine's bookkeeping — this is the safety net for the O(log n) true-cancel
// machinery (heap removal from the middle, slot reuse, id-map backward-shift
// deletion).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/event_queue.h"

namespace scalecheck {
namespace {

VirtualTime At(int64_t ns) { return VirtualTime::Zero() + VirtualDuration::Nanos(ns); }

// Reference model: O(n) everything, trivially correct.
class NaiveQueue {
 public:
  EventId Schedule(int64_t time_ns) {
    EventId id = next_id_++;
    entries_.push_back({time_ns, id});
    return id;
  }

  bool Cancel(EventId id) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Pops the (time, id)-least entry.
  std::pair<int64_t, EventId> Pop() {
    size_t best = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].time_ns < entries_[best].time_ns ||
          (entries_[i].time_ns == entries_[best].time_ns &&
           entries_[i].id < entries_[best].id)) {
        best = i;
      }
    }
    std::pair<int64_t, EventId> out{entries_[best].time_ns, entries_[best].id};
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(best));
    return out;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    int64_t time_ns;
    EventId id;
  };
  std::vector<Entry> entries_;
  EventId next_id_ = 1;
};

void RunFuzz(uint64_t seed, int ops, int64_t time_range, bool drain_at_end) {
  Rng rng(seed);
  EventQueue q;
  NaiveQueue ref;
  std::vector<EventId> live;       // ids both queues still hold
  std::vector<EventId> retired;    // ids popped or cancelled (must fail Cancel)
  EventId popped_id = kInvalidEvent;  // written by each event's closure

  for (int op = 0; op < ops; ++op) {
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
    int64_t roll = rng.UniformInt(0, 99);
    if (roll < 50 || q.empty()) {
      // Schedule. Small time range on purpose: collisions exercise the
      // (time, id) tie-break constantly.
      int64_t t = rng.UniformInt(0, time_range);
      EventId want = ref.Schedule(t);
      // The closure knows its own id, so Pop order is checked by identity,
      // not just by timestamp.
      EventId got = q.Schedule(At(t), [&popped_id, want] { popped_id = want; });
      ASSERT_EQ(got, want);
      live.push_back(got);
    } else if (roll < 75) {
      // Cancel: half the time a live id, half a retired or bogus one.
      EventId target;
      if (rng.Bernoulli(0.5) && !live.empty()) {
        size_t i = rng.PickIndex(live.size());
        target = live[i];
        live.erase(live.begin() + static_cast<ptrdiff_t>(i));
        retired.push_back(target);
      } else if (!retired.empty() && rng.Bernoulli(0.8)) {
        target = retired[rng.PickIndex(retired.size())];
      } else {
        target = static_cast<EventId>(rng.UniformInt(100000, 200000));
      }
      ASSERT_EQ(q.Cancel(target), ref.Cancel(target));
    } else {
      VirtualTime t;
      q.Pop(&t)();
      auto [want_time, want_id] = ref.Pop();
      ASSERT_EQ(t, At(want_time));
      ASSERT_EQ(popped_id, want_id);
      live.erase(std::find(live.begin(), live.end(), want_id));
      retired.push_back(want_id);
      // NextTime on the survivor set must match the reference minimum.
      if (!ref.empty()) {
        auto copy = ref;
        ASSERT_EQ(q.NextTime(), At(copy.Pop().first));
      }
    }
  }

  if (drain_at_end) {
    while (!ref.empty()) {
      VirtualTime t;
      q.Pop(&t)();
      auto [want_time, want_id] = ref.Pop();
      ASSERT_EQ(t, At(want_time));
      ASSERT_EQ(popped_id, want_id);
    }
    ASSERT_TRUE(q.empty());
    ASSERT_EQ(q.total_scheduled(), ref.size() + retired.size() + live.size());
  }
}

TEST(EventQueueFuzz, MatchesReferenceDenseTies) {
  // time_range 16 → massive tie pileups; FIFO-within-time is load-bearing.
  RunFuzz(/*seed=*/1, /*ops=*/20000, /*time_range=*/16, /*drain_at_end=*/true);
}

TEST(EventQueueFuzz, MatchesReferenceSparseTimes) {
  RunFuzz(/*seed=*/2, /*ops=*/20000, /*time_range=*/1000000, /*drain_at_end=*/true);
}

TEST(EventQueueFuzz, ManySeedsShortRuns) {
  for (uint64_t seed = 10; seed < 40; ++seed) {
    RunFuzz(seed, /*ops=*/2000, /*time_range=*/64, /*drain_at_end=*/true);
  }
}

}  // namespace
}  // namespace scalecheck
