#include <gtest/gtest.h>

#include <memory>

#include "src/sim/thread.h"

namespace scalecheck {
namespace {

class ExpiryFixture : public ::testing::Test {
 protected:
  ExpiryFixture() : sim_(1) {
    MachineSpec spec;
    spec.cores = 1.0;
    spec.ctx_switch_penalty = 0.0;
    machine_ = std::make_unique<Machine>(&sim_, 0, spec);
    thread_ = std::make_unique<SimThread>(&sim_, machine_.get(), "t");
  }

  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<SimThread> thread_;
};

TEST_F(ExpiryFixture, FreshJobsRunNormally) {
  bool ran = false;
  Job job("j");
  job.ExpiresAfter(VirtualDuration::Seconds(1));
  job.Run([&] { ran = true; });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(thread_->jobs_dropped(), 0u);
}

TEST_F(ExpiryFixture, StaleJobsAreShedUnstarted) {
  // A 10s hog delays the queue; jobs with a 2s expiry behind it are dropped.
  Job hog("hog");
  hog.Compute(10'000'000'000);
  thread_->Enqueue(std::move(hog));

  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    Job job("stale");
    job.ExpiresAfter(VirtualDuration::Seconds(2));
    job.Run([&] { ++ran; });
    thread_->Enqueue(std::move(job));
  }
  Job durable("durable");  // no expiry: survives any wait
  durable.Run([&] { ++ran; });
  thread_->Enqueue(std::move(durable));

  sim_.RunUntilIdle();
  EXPECT_EQ(ran, 1);  // only the unexpiring job
  EXPECT_EQ(thread_->jobs_dropped(), 5u);
}

TEST_F(ExpiryFixture, ExpiryMeasuredFromIntendedTime) {
  Job hog("hog");
  hog.Compute(3'000'000'000);  // 3s
  thread_->Enqueue(std::move(hog));

  // Intended 2s in the past already; 4s expiry still leaves 3s of patience.
  bool ran = false;
  Job job("j");
  job.IntendedAt(sim_.Now());
  job.ExpiresAfter(VirtualDuration::Seconds(4));
  job.Run([&] { ran = true; });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_TRUE(ran);  // 3s wait < 4s expiry
}

TEST_F(ExpiryFixture, DroppedJobsStillAllowLaterWork) {
  Job hog("hog");
  hog.Compute(5'000'000'000);
  thread_->Enqueue(std::move(hog));
  Job stale("stale");
  stale.ExpiresAfter(VirtualDuration::Millis(100));
  stale.Run([] { FAIL() << "stale job must not run"; });
  thread_->Enqueue(std::move(stale));
  sim_.RunUntilIdle();

  bool ran = false;
  Job fresh("fresh");
  fresh.ExpiresAfter(VirtualDuration::Seconds(1));
  fresh.Run([&] { ran = true; });
  thread_->Enqueue(std::move(fresh));
  sim_.RunUntilIdle();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace scalecheck
