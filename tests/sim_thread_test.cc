#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/thread.h"

namespace scalecheck {
namespace {

class ThreadFixture : public ::testing::Test {
 protected:
  ThreadFixture() : sim_(1) {
    MachineSpec spec;
    spec.cores = 1.0;
    spec.ctx_switch_penalty = 0.0;
    machine_ = std::make_unique<Machine>(&sim_, 0, spec);
    thread_ = std::make_unique<SimThread>(&sim_, machine_.get(), "t");
  }

  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<SimThread> thread_;
};

TEST_F(ThreadFixture, RunStepsExecuteInOrder) {
  std::vector<int> order;
  Job job("j");
  job.Run([&] { order.push_back(1); }).Run([&] { order.push_back(2); }).Run([&] {
    order.push_back(3);
  });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(thread_->jobs_completed(), 1u);
}

TEST_F(ThreadFixture, ComputeAdvancesVirtualTime) {
  double finished_at = -1;
  Job job("j");
  job.Compute(500'000'000).Run([&] { finished_at = sim_.Now().seconds(); });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_NEAR(finished_at, 0.5, 1e-6);
  EXPECT_EQ(thread_->total_work(), 500'000'000);
  EXPECT_NEAR(thread_->compute_time().seconds(), 0.5, 1e-6);
}

TEST_F(ThreadFixture, SleepDoesNotUseCpu) {
  Job job("j");
  job.Sleep(VirtualDuration::Seconds(2));
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_NEAR(sim_.Now().seconds(), 2.0, 1e-9);
  EXPECT_NEAR(thread_->sleep_time().seconds(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(machine_->cpu().busy_core_seconds(), 0.0);
}

TEST_F(ThreadFixture, JobsRunFifo) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    Job job("j");
    job.Compute(1000).Run([&order, i] { order.push_back(i); });
    thread_->Enqueue(std::move(job));
  }
  EXPECT_GE(thread_->queue_depth(), 4u);  // first may have started
  sim_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ThreadFixture, LazyWorkEvaluatedAtStepStart) {
  WorkUnits work = 0;
  Job first("a");
  first.Run([&] { work = 1'000'000'000; });
  Job second("b");
  second.Compute([&] { return work; });
  thread_->Enqueue(std::move(first));
  thread_->Enqueue(std::move(second));
  sim_.RunUntilIdle();
  EXPECT_NEAR(sim_.Now().seconds(), 1.0, 1e-6);
}

TEST_F(ThreadFixture, LockSerializesAcrossThreads) {
  SimMutex mutex(&sim_, "m");
  SimThread other(&sim_, machine_.get(), "other");
  std::vector<int> order;

  Job a("a");
  a.Lock(&mutex)
      .Run([&] { order.push_back(1); })
      .Sleep(VirtualDuration::Seconds(1))
      .Run([&] { order.push_back(2); })
      .Unlock(&mutex);
  Job b("b");
  b.Lock(&mutex).Run([&] { order.push_back(3); }).Unlock(&mutex);

  thread_->Enqueue(std::move(a));
  other.Enqueue(std::move(b));
  sim_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(sim_.Now().seconds(), 1.0, 1e-6);
}

TEST_F(ThreadFixture, AsyncStepParksUntilDone) {
  std::function<void()> resume;
  std::vector<int> order;
  Job job("j");
  job.Run([&] { order.push_back(1); })
      .Async([&](std::function<void()> done) { resume = std::move(done); })
      .Run([&] { order.push_back(2); });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>{1});
  EXPECT_FALSE(thread_->idle());
  resume();
  sim_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(thread_->idle());
}

TEST_F(ThreadFixture, AsyncCompletingSynchronouslyContinues) {
  std::vector<int> order;
  Job job("j");
  job.Async([](std::function<void()> done) { done(); }).Run([&] {
    order.push_back(1);
  });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>{1});
}

TEST_F(ThreadFixture, KillAbortsCurrentJobAndQueue) {
  std::vector<int> order;
  Job a("a");
  a.Compute(1'000'000'000).Run([&] { order.push_back(1); });
  Job b("b");
  b.Run([&] { order.push_back(2); });
  thread_->Enqueue(std::move(a));
  thread_->Enqueue(std::move(b));
  sim_.ScheduleAfter(VirtualDuration::Millis(100), [&] { thread_->Kill(); });
  sim_.RunUntilIdle();
  EXPECT_TRUE(order.empty());
  EXPECT_TRUE(thread_->dead());
  EXPECT_EQ(machine_->cpu().active_count(), 0);  // burst cancelled
}

TEST_F(ThreadFixture, EnqueueAfterKillIsDropped) {
  thread_->Kill();
  Job job("j");
  bool ran = false;
  job.Run([&] { ran = true; });
  thread_->Enqueue(std::move(job));
  sim_.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST_F(ThreadFixture, LatenessRecordedAgainstIntendedTime) {
  Job hog("hog");
  hog.Compute(2'000'000'000);  // blocks the thread 2s
  thread_->Enqueue(std::move(hog));

  sim_.ScheduleAfter(VirtualDuration::Seconds(1), [&] {
    Job late("late");
    late.IntendedAt(sim_.Now());
    late.Run([] {});
    thread_->Enqueue(std::move(late));
  });
  sim_.RunUntilIdle();
  // The late job waited from t=1 to t=2 behind the hog.
  EXPECT_GE(machine_->lateness().max().seconds(), 0.9);
}

}  // namespace
}  // namespace scalecheck
