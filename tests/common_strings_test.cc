#include <gtest/gtest.h>

#include "src/common/strings.h"

namespace scalecheck {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutputsAllocateCorrectly) {
  std::string big(5000, 'a');
  std::string out = StrFormat("%s!", big.c_str());
  EXPECT_EQ(out.size(), 5001u);
  EXPECT_EQ(out.back(), '!');
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(RenderTableTest, AlignsColumns) {
  std::string table = RenderTable({"name", "v"}, {{"x", "10"}, {"longer", "2"}});
  EXPECT_NE(table.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(table.find("| longer | 2  |"), std::string::npos);
  EXPECT_NE(table.find("+--------+----+"), std::string::npos);
}

TEST(HumanCountTest, PicksSuffixes) {
  EXPECT_EQ(HumanCount(950), "950");
  EXPECT_EQ(HumanCount(12300), "12.3k");
  EXPECT_EQ(HumanCount(4.5e6), "4.5M");
  EXPECT_EQ(HumanCount(2e9), "2G");
}

TEST(HumanBytesTest, PicksSuffixes) {
  EXPECT_EQ(HumanBytes(512), "512.00B");
  EXPECT_EQ(HumanBytes(2048), "2.00KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00MiB");
  EXPECT_EQ(HumanBytes(32LL * 1024 * 1024 * 1024), "32.00GiB");
}

}  // namespace
}  // namespace scalecheck
