#include <gtest/gtest.h>

#include "src/pil/function_registry.h"

namespace scalecheck {
namespace {

TEST(FunctionRegistryTest, RegisterAssignsSequentialIds) {
  FunctionRegistry registry;
  PilFunctionId a = registry.Register("calc", "O(N^3)", SideEffects{}, true);
  PilFunctionId b = registry.Register("gossip", "O(N)", SideEffects{}, true);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(registry.functions().size(), 2u);
}

TEST(FunctionRegistryTest, FindByIdAndName) {
  FunctionRegistry registry;
  PilFunctionId id = registry.Register("calc", "O(N^3)", SideEffects{}, true);
  const PilFunctionInfo* by_id = registry.Find(id);
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(by_id->name, "calc");
  const PilFunctionInfo* by_name = registry.FindByName("calc");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->id, id);
  EXPECT_EQ(registry.Find(99), nullptr);
  EXPECT_EQ(registry.Find(kInvalidPilFunction), nullptr);
  EXPECT_EQ(registry.FindByName("nope"), nullptr);
}

TEST(FunctionRegistryTest, DuplicateNameDies) {
  FunctionRegistry registry;
  registry.Register("calc", "", SideEffects{}, true);
  EXPECT_DEATH(registry.Register("calc", "", SideEffects{}, false), "duplicate");
}

TEST(PilSafetyRule, PureFunctionIsSafe) {
  PilFunctionInfo info;
  info.effects = SideEffects{};
  EXPECT_TRUE(info.IsPilSafe());
}

TEST(PilSafetyRule, AnySideEffectBreaksSafety) {
  // §5's rule: disk I/O, network messages, locks, or nondeterminism each
  // individually disqualify a function from taking the PIL.
  for (int effect = 0; effect < 4; ++effect) {
    SideEffects e;
    e.disk_io = effect == 0;
    e.network_messages = effect == 1;
    e.acquires_locks = effect == 2;
    e.nondeterministic = effect == 3;
    PilFunctionInfo info;
    info.effects = e;
    EXPECT_FALSE(info.IsPilSafe()) << "effect " << effect;
    EXPECT_TRUE(e.Any());
  }
}

}  // namespace
}  // namespace scalecheck
