// PIL boundary semantics: the same invocation under direct, memoize, and
// replay modes must apply identical outputs, while the CPU/sleep behaviour
// differs exactly as the paper prescribes.

#include <gtest/gtest.h>

#include <memory>

#include "src/pil/boundary.h"

namespace scalecheck {
namespace {

class BoundaryFixture : public ::testing::Test {
 protected:
  BoundaryFixture() : sim_(1) {
    MachineSpec spec;
    spec.cores = 1.0;
    spec.ctx_switch_penalty = 0.0;
    machine_ = std::make_unique<Machine>(&sim_, 0, spec);
    thread_ = std::make_unique<SimThread>(&sim_, machine_.get(), "t");
  }

  // A fake offending function: input -> (bytes, work).
  static PilBoundary::ComputeOutput Compute() {
    PilBoundary::ComputeOutput out;
    out.output = {0xaa, 0xbb};
    out.work = 1'000'000'000;  // 1s at 1e9 units/s
    return out;
  }

  static DigestValue Input() { return DigestValue{123, 456}; }

  void RunBoundary(PilBoundary* boundary, std::vector<uint8_t>* applied,
                   bool* from_memo) {
    Job job("f");
    boundary->Apply(
        &job, /*function=*/1, [] { return Input(); }, [] { return Compute(); },
        [applied, from_memo](const std::vector<uint8_t>& output, bool memo) {
          *applied = output;
          *from_memo = memo;
        });
    thread_->Enqueue(std::move(job));
    sim_.RunUntilIdle();
  }

  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<SimThread> thread_;
};

TEST_F(BoundaryFixture, DirectModeChargesCpu) {
  PilBoundary boundary(&sim_, PilMode::kDirect, nullptr, 1e9);
  std::vector<uint8_t> applied;
  bool from_memo = true;
  RunBoundary(&boundary, &applied, &from_memo);
  EXPECT_EQ(applied, (std::vector<uint8_t>{0xaa, 0xbb}));
  EXPECT_FALSE(from_memo);
  EXPECT_NEAR(sim_.Now().seconds(), 1.0, 1e-6);
  EXPECT_NEAR(machine_->cpu().busy_core_seconds(), 1.0, 1e-6);  // real CPU
  EXPECT_EQ(boundary.stats().direct_runs, 1u);
}

TEST_F(BoundaryFixture, MemoizeModeRecordsUncontendedDuration) {
  MemoStore store;
  PilBoundary boundary(&sim_, PilMode::kMemoize, &store, 1e9);
  std::vector<uint8_t> applied;
  bool from_memo = true;
  // Add CPU contention: another 1s burst shares the core, so the boundary's
  // wall time doubles — but the RECORDED duration must stay 1s (CPU time).
  machine_->cpu().StartTask(1'000'000'000, [] {});
  RunBoundary(&boundary, &applied, &from_memo);
  EXPECT_FALSE(from_memo);
  EXPECT_GT(sim_.Now().seconds(), 1.5);  // contended wall time
  const MemoRecord* rec = store.Peek(1, DigestValue{123, 456});
  ASSERT_NE(rec, nullptr);
  EXPECT_NEAR(rec->cpu_duration.seconds(), 1.0, 1e-6);  // in-situ CPU time
  EXPECT_EQ(rec->output, (std::vector<uint8_t>{0xaa, 0xbb}));
  EXPECT_EQ(boundary.stats().memoized_runs, 1u);
}

TEST_F(BoundaryFixture, ReplayHitSleepsWithoutCpu) {
  MemoStore store;
  MemoRecord rec;
  rec.output = {0xcc};
  rec.cpu_duration = VirtualDuration::Seconds(2);
  rec.work = 2'000'000'000;
  store.Put(1, DigestValue{123, 456}, std::move(rec));

  PilBoundary boundary(&sim_, PilMode::kReplay, &store, 1e9);
  std::vector<uint8_t> applied;
  bool from_memo = false;
  RunBoundary(&boundary, &applied, &from_memo);
  EXPECT_TRUE(from_memo);
  EXPECT_EQ(applied, std::vector<uint8_t>{0xcc});  // memoized output wins
  EXPECT_NEAR(sim_.Now().seconds(), 2.0, 1e-6);    // slept the recorded time
  EXPECT_DOUBLE_EQ(machine_->cpu().busy_core_seconds(), 0.0);  // ZERO cpu
  EXPECT_EQ(boundary.stats().replay_hits, 1u);
}

TEST_F(BoundaryFixture, ReplayMissFallsBackComputesAndExtendsStore) {
  MemoStore store;  // empty: guaranteed miss
  PilBoundary boundary(&sim_, PilMode::kReplay, &store, 1e9);
  std::vector<uint8_t> applied;
  bool from_memo = true;
  RunBoundary(&boundary, &applied, &from_memo);
  EXPECT_FALSE(from_memo);
  EXPECT_EQ(applied, (std::vector<uint8_t>{0xaa, 0xbb}));  // computed output
  EXPECT_NEAR(sim_.Now().seconds(), 1.0, 1e-6);            // slept model time
  EXPECT_DOUBLE_EQ(machine_->cpu().busy_core_seconds(), 0.0);  // still no CPU
  EXPECT_EQ(boundary.stats().replay_misses, 1u);
  // Iterative memoization: the miss extended the DB.
  EXPECT_NE(store.Peek(1, DigestValue{123, 456}), nullptr);
}

TEST_F(BoundaryFixture, ReplayPreservesLockHolding) {
  // The C5456 structure: lock around the boundary. A replay sleep must hold
  // the lock exactly as the computation did.
  MemoStore store;
  MemoRecord rec;
  rec.output = {1};
  rec.cpu_duration = VirtualDuration::Seconds(1);
  store.Put(1, DigestValue{123, 456}, std::move(rec));
  PilBoundary boundary(&sim_, PilMode::kReplay, &store, 1e9);

  SimMutex mutex(&sim_, "ring");
  double other_acquired_at = -1;

  Job job("calc");
  job.Lock(&mutex);
  boundary.Apply(
      &job, 1, [] { return Input(); }, [] { return Compute(); },
      [](const std::vector<uint8_t>&, bool) {});
  job.Unlock(&mutex);
  thread_->Enqueue(std::move(job));

  SimThread other(&sim_, machine_.get(), "other");
  Job waiter("gossip-apply");
  waiter.Lock(&mutex).Run([&] { other_acquired_at = sim_.Now().seconds(); }).Unlock(&mutex);
  other.Enqueue(std::move(waiter));

  sim_.RunUntilIdle();
  EXPECT_NEAR(other_acquired_at, 1.0, 1e-6);  // blocked behind the sleep
}

TEST_F(BoundaryFixture, WorkToDurationUsesCoreSpeed) {
  PilBoundary boundary(&sim_, PilMode::kDirect, nullptr, 2e9);
  EXPECT_NEAR(boundary.WorkToDuration(1'000'000'000).seconds(), 0.5, 1e-9);
}

TEST(PilModeNames, AllNamed) {
  EXPECT_STREQ(PilModeName(PilMode::kDirect), "direct");
  EXPECT_STREQ(PilModeName(PilMode::kMemoize), "memoize");
  EXPECT_STREQ(PilModeName(PilMode::kReplay), "replay");
}

}  // namespace
}  // namespace scalecheck
