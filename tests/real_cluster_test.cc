// Real-socket cluster tests: the SAME Gossiper/ring/KvService translation
// units that run in the simulator, booted on localhost TCP with wall-clock
// timers. Small N and fast gossip keep this inside normal ctest budgets.

#include <gtest/gtest.h>

#include <string>

#include "src/net/real_cluster.h"

namespace scalecheck {
namespace {

RealCluster::Options FastOptions(int nodes) {
  RealCluster::Options options;
  options.num_nodes = nodes;
  options.seeds = 2;
  options.node.seed = 42;
  options.node.gossip_interval = VirtualDuration::Millis(20);
  options.convergence_timeout = VirtualDuration::Seconds(20);
  return options;
}

TEST(RealCluster, FourNodesConvergeOnLocalhost) {
  RealCluster cluster(FastOptions(4));
  RunResult result = cluster.Run();
  EXPECT_TRUE(result.settled) << result.Summary();
  EXPECT_EQ(result.mode, RunMode::kRealSockets);
  EXPECT_EQ(result.num_nodes, 4);
  EXPECT_GT(result.settle_time.nanos(), 0);
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_GT(result.messages_delivered, 0u);
  // Real sockets on loopback under no faults: nothing should flap.
  EXPECT_EQ(result.flaps, 0) << result.Summary();
}

TEST(RealCluster, KvQuorumOpsSucceedAfterConvergence) {
  RealCluster::Options options = FastOptions(5);
  options.node.enable_kv = true;
  options.kv_ops = 16;
  RealCluster cluster(options);
  RunResult result = cluster.Run();
  ASSERT_TRUE(result.settled) << result.Summary();
  EXPECT_EQ(result.kv_issued, 32);  // 16 writes + 16 reads
  EXPECT_EQ(result.kv_ok, 32) << result.Summary();
  EXPECT_EQ(result.kv_unavailable, 0);
  EXPECT_EQ(result.kv_timeout, 0);
  EXPECT_EQ(result.kv_inflight_at_stop, 0);
  EXPECT_GT(result.kv_latency_p99.nanos(), 0);
}

TEST(RealCluster, KvWalGroupCommitAcksOverTcp) {
  // The durable data path on the TCP carrier: with the WAL on, a replica
  // defers its write ack until the group-commit sync, so every OK below
  // means the record was durable before the coordinator counted the ack —
  // the same contract the sim-side kv-durability invariant audits.
  RealCluster::Options options = FastOptions(5);
  options.node.enable_kv = true;
  options.node.kv_wal = true;
  options.node.kv_wal_sync_interval = VirtualDuration::Millis(25);
  options.kv_ops = 16;
  RealCluster cluster(options);
  RunResult result = cluster.Run();
  ASSERT_TRUE(result.settled) << result.Summary();
  EXPECT_EQ(result.kv_issued, 32);
  EXPECT_EQ(result.kv_ok, 32) << result.Summary();
  EXPECT_GT(result.kv_wal_bytes, 0);
  EXPECT_EQ(result.kv_ops_quorum, 32);
  EXPECT_EQ(result.kv_ops_one, 0);
  EXPECT_EQ(result.kv_ops_all, 0);
}

TEST(RealCluster, IslandPartitionHealsOnRealSockets) {
  // The same FaultPlan the sim replays, against real TCP: island node 4
  // behind the link filter long enough for conviction, heal, and demand
  // reconvergence within the partition-heal bound. Plan times are authored
  // in sim gossip rounds (1s); at a 25ms interval the 32-round partition is
  // ~0.8s wall, so the whole fault phase fits inside a ctest budget.
  RealCluster::Options options = FastOptions(5);
  options.node.gossip_interval = VirtualDuration::Millis(25);
  options.faults = FaultPlan::IslandPartition(5, /*seed=*/42);
  RealCluster cluster(options);
  RunResult result = cluster.Run();
  ASSERT_TRUE(result.settled) << result.Summary();
  EXPECT_EQ(result.fault_events_applied, 1);
  EXPECT_EQ(result.fault_events_healed, 1);
  EXPECT_GT(result.messages_blocked, 0u) << result.Summary();
  // The real-mode partition-heals probe ran and passed: nobody islanded.
  EXPECT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
  EXPECT_EQ(result.unreachable_endpoints, 0) << result.Summary();
  EXPECT_EQ(result.live_endpoints, 5 * 4);
}

TEST(RealCluster, ResultJsonRoundTripsThroughSameSchema) {
  RealCluster cluster(FastOptions(3));
  RunResult result = cluster.Run();
  ASSERT_TRUE(result.settled) << result.Summary();
  std::string json = result.ToJson();
  // Same exporter the simulated modes use — mode name included.
  EXPECT_NE(json.find("\"mode\":\"RealNet\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"settled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"messages_sent\""), std::string::npos) << json;
}

}  // namespace
}  // namespace scalecheck
