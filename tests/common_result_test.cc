#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/pil/memo_store.h"

namespace scalecheck {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::CorruptData("").code(), StatusCode::kCorruptData);
  EXPECT_EQ(Status::FailedPrecondition("").code(), StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOnErrorDies) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_DEATH(r.value(), "value\\(\\) on error");
}

TEST(ResultTest, OkStatusWithoutValueDies) {
  EXPECT_DEATH(Result<int>(Status::Ok()), "without a value");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'a'));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(MemoStoreStatusApi, SaveLoadRoundTrip) {
  MemoStore store;
  MemoRecord rec;
  rec.output = {1, 2};
  rec.cpu_duration = VirtualDuration::Millis(3);
  store.Put(1, DigestValue{9, 9}, std::move(rec));
  const char* path = "/tmp/scalecheck_result_api.memo";
  ASSERT_TRUE(store.Save(path).ok());
  Result<MemoStore> loaded = MemoStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 1u);
  std::remove(path);
}

TEST(MemoStoreStatusApi, LoadMissingFileIsNotFound) {
  Result<MemoStore> r = MemoStore::Load("/nonexistent/nope.memo");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MemoStoreStatusApi, LoadCorruptFileIsCorruptData) {
  const char* path = "/tmp/scalecheck_corrupt.memo";
  std::FILE* f = std::fopen(path, "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a memo db", f);
  std::fclose(f);
  Result<MemoStore> r = MemoStore::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
  std::remove(path);
}

}  // namespace
}  // namespace scalecheck
