// Satellite: the CLI mode-flag normalization (src/scalecheck/cli_modes.h).
// Covers the canonical spellings, every deprecated alias and its suggested
// replacement, --sim-modes parsing, and the errors.

#include <gtest/gtest.h>

#include "src/scalecheck/cli_modes.h"

namespace scalecheck {
namespace {

TEST(CliModes, SuiteDefaultsToFullGrid) {
  Result<ModeSelection> sel = ParseCliMode("suite", "");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().kind, CliModeKind::kSuite);
  EXPECT_FALSE(sel.value().deprecated_alias);
  EXPECT_TRUE(sel.value().IsFullGrid());
  EXPECT_EQ(sel.value().sim_modes.size(), 4u);
}

TEST(CliModes, SuiteWithSubset) {
  Result<ModeSelection> sel = ParseCliMode("suite", "colo,replay");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel.value().sim_modes.size(), 2u);
  EXPECT_EQ(sel.value().sim_modes[0], RunMode::kColocated);
  EXPECT_EQ(sel.value().sim_modes[1], RunMode::kPilReplay);
  EXPECT_FALSE(sel.value().IsFullGrid());
}

TEST(CliModes, SuiteWithExplicitGridIsFullGridInAnyOrder) {
  Result<ModeSelection> sel = ParseCliMode("suite", "replay,colo,real,memoize");
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel.value().IsFullGrid());
}

TEST(CliModes, SimModeSpellings) {
  EXPECT_EQ(SimModeFromFlag("real").value(), RunMode::kRealScale);
  EXPECT_EQ(SimModeFromFlag("real-scale").value(), RunMode::kRealScale);
  EXPECT_EQ(SimModeFromFlag("colo").value(), RunMode::kColocated);
  EXPECT_EQ(SimModeFromFlag("memoize").value(), RunMode::kMemoize);
  EXPECT_EQ(SimModeFromFlag("replay").value(), RunMode::kPilReplay);
  EXPECT_FALSE(SimModeFromFlag("sockets").ok());
}

TEST(CliModes, CanonicalNonSuiteModes) {
  EXPECT_EQ(ParseCliMode("search", "").value().kind, CliModeKind::kSearch);
  EXPECT_EQ(ParseCliMode("repro", "").value().kind, CliModeKind::kRepro);
  // Bare --mode=real now means REAL SOCKETS (the simulated real-scale
  // deployment moved to --sim-modes=real).
  Result<ModeSelection> real = ParseCliMode("real", "");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(real.value().kind, CliModeKind::kReal);
  EXPECT_FALSE(real.value().deprecated_alias);
  EXPECT_TRUE(real.value().sim_modes.empty());
}

struct AliasCase {
  const char* spelling;
  RunMode mapped;
  const char* canonical;
};

TEST(CliModes, DeprecatedAliasesMapAndSuggest) {
  const AliasCase kCases[] = {
      {"colo", RunMode::kColocated, "--mode=suite --sim-modes=colo"},
      {"memoize", RunMode::kMemoize, "--mode=suite --sim-modes=memoize"},
      {"replay", RunMode::kPilReplay, "--mode=suite --sim-modes=replay"},
      {"real-scale", RunMode::kRealScale, "--mode=suite --sim-modes=real"},
      {"sim-real", RunMode::kRealScale, "--mode=suite --sim-modes=real"},
  };
  for (const AliasCase& c : kCases) {
    Result<ModeSelection> sel = ParseCliMode(c.spelling, "");
    ASSERT_TRUE(sel.ok()) << c.spelling;
    EXPECT_EQ(sel.value().kind, CliModeKind::kSuite) << c.spelling;
    EXPECT_TRUE(sel.value().deprecated_alias) << c.spelling;
    EXPECT_EQ(sel.value().canonical, c.canonical) << c.spelling;
    ASSERT_EQ(sel.value().sim_modes.size(), 1u) << c.spelling;
    EXPECT_EQ(sel.value().sim_modes[0], c.mapped) << c.spelling;
  }
}

TEST(CliModes, FullAliasMapsToWholeGrid) {
  Result<ModeSelection> sel = ParseCliMode("full", "");
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel.value().deprecated_alias);
  EXPECT_EQ(sel.value().canonical, "--mode=suite");
  EXPECT_TRUE(sel.value().IsFullGrid());
}

TEST(CliModes, SimModesOnlyLegalWithSuite) {
  EXPECT_FALSE(ParseCliMode("search", "colo").ok());
  EXPECT_FALSE(ParseCliMode("real", "colo").ok());
  EXPECT_FALSE(ParseCliMode("repro", "colo").ok());
  // An alias carries its own selection; --sim-modes alongside it is a
  // contradiction, not a merge.
  EXPECT_FALSE(ParseCliMode("colo", "replay").ok());
}

TEST(CliModes, BadInputRejected) {
  EXPECT_FALSE(ParseCliMode("bogus", "").ok());
  EXPECT_FALSE(ParseCliMode("suite", "colo,bogus").ok());
  EXPECT_FALSE(ParseCliMode("suite", "colo,colo").ok());
  EXPECT_FALSE(ParseCliMode("suite", "colo,").ok());  // empty trailing entry
  Result<ModeSelection> bad = ParseCliMode("bogus", "");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliModes, KindNames) {
  EXPECT_STREQ(CliModeKindName(CliModeKind::kSuite), "suite");
  EXPECT_STREQ(CliModeKindName(CliModeKind::kSearch), "search");
  EXPECT_STREQ(CliModeKindName(CliModeKind::kRepro), "repro");
  EXPECT_STREQ(CliModeKindName(CliModeKind::kReal), "real");
}

}  // namespace
}  // namespace scalecheck
