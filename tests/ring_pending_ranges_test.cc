#include <gtest/gtest.h>

#include "src/ring/pending_ranges.h"

namespace scalecheck {
namespace {

TEST(PendingRangesTest, NormalizeSortsAndDedupes) {
  PendingRanges pr;
  pr.Add(KeyRange{30, 40}, 2);
  pr.Add(KeyRange{10, 20}, 1);
  pr.Add(KeyRange{30, 40}, 2);  // duplicate
  pr.Normalize();
  ASSERT_EQ(pr.size(), 2u);
  EXPECT_EQ(pr.items()[0].range.start, 10u);
  EXPECT_EQ(pr.items()[1].range.start, 30u);
}

TEST(PendingRangesTest, CodecRoundTrips) {
  PendingRanges pr;
  pr.Add(KeyRange{1, 2}, 7);
  pr.Add(KeyRange{0xffffffffffffff00ULL, 5}, 9);  // wrapping range survives
  pr.Normalize();
  std::vector<uint8_t> bytes = pr.Encode();
  PendingRanges decoded;
  ASSERT_TRUE(PendingRanges::Decode(bytes, &decoded));
  EXPECT_EQ(decoded, pr);
  EXPECT_EQ(decoded.ComputeDigest(), pr.ComputeDigest());
}

TEST(PendingRangesTest, EmptyCodec) {
  PendingRanges pr;
  PendingRanges decoded;
  ASSERT_TRUE(PendingRanges::Decode(pr.Encode(), &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(PendingRangesTest, DecodeRejectsGarbage) {
  PendingRanges out;
  EXPECT_FALSE(PendingRanges::Decode({1, 2, 3}, &out));
  // Truncated payload: count says 1 item but bytes end early.
  PendingRanges one;
  one.Add(KeyRange{1, 2}, 3);
  std::vector<uint8_t> bytes = one.Encode();
  bytes.pop_back();
  EXPECT_FALSE(PendingRanges::Decode(bytes, &out));
  // Trailing junk is rejected too.
  bytes = one.Encode();
  bytes.push_back(0);
  EXPECT_FALSE(PendingRanges::Decode(bytes, &out));
}

TEST(PendingRangesTest, DigestDiffersByTarget) {
  PendingRanges a;
  a.Add(KeyRange{1, 2}, 3);
  PendingRanges b;
  b.Add(KeyRange{1, 2}, 4);
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
}

TEST(BuildFutureRingTest, AppliesJoinsAndLeaves) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {200});
  CalcInput input;
  input.ring = &ring;
  input.changes.push_back(PendingChange{1, ChangeKind::kLeaving, {}});
  input.changes.push_back(PendingChange{3, ChangeKind::kJoining, {300}});
  TokenRing future = input.BuildFutureRing();
  EXPECT_FALSE(future.HasNode(1));
  EXPECT_TRUE(future.HasNode(2));
  EXPECT_TRUE(future.HasNode(3));
  EXPECT_EQ(future.num_entries(), 2u);
  // The original ring is untouched.
  EXPECT_TRUE(ring.HasNode(1));
}

TEST(BuildFutureRingTest, DuplicateJoinIsIdempotent) {
  TokenRing ring;
  ring.AddNode(1, {100});
  CalcInput input;
  input.ring = &ring;
  input.changes.push_back(PendingChange{3, ChangeKind::kJoining, {300}});
  input.changes.push_back(PendingChange{3, ChangeKind::kJoining, {300}});
  TokenRing future = input.BuildFutureRing();
  EXPECT_EQ(future.num_entries(), 2u);
}

}  // namespace
}  // namespace scalecheck
