#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "src/ring/token_ring.h"

namespace scalecheck {
namespace {

TEST(KeyRangeTest, ContainsRespectsHalfOpenInterval) {
  KeyRange r{100, 200};
  EXPECT_FALSE(r.Contains(100));  // (start, end]
  EXPECT_TRUE(r.Contains(101));
  EXPECT_TRUE(r.Contains(200));
  EXPECT_FALSE(r.Contains(201));
}

TEST(KeyRangeTest, WrappingRange) {
  KeyRange r{static_cast<Token>(-100), 50};  // wraps past 0
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(static_cast<Token>(-50)));
  EXPECT_FALSE(r.Contains(100));
  EXPECT_TRUE(r.Contains(50));
}

TEST(TokenRingTest, AddAndRemoveMaintainSortedEntries) {
  TokenRing ring;
  ring.AddNode(1, {500, 100});
  ring.AddNode(2, {300});
  ASSERT_EQ(ring.num_entries(), 3u);
  EXPECT_EQ(ring.entries()[0].token, 100u);
  EXPECT_EQ(ring.entries()[1].token, 300u);
  EXPECT_EQ(ring.entries()[2].token, 500u);
  ring.RemoveNode(1);
  ASSERT_EQ(ring.num_entries(), 1u);
  EXPECT_EQ(ring.entries()[0].owner, 2);
  EXPECT_FALSE(ring.HasNode(1));
}

TEST(TokenRingTest, OwnerIndexCeilingSemanticsWithWrap) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {300});
  EXPECT_EQ(ring.OwnerOf(50), 1);    // first token >= 50
  EXPECT_EQ(ring.OwnerOf(100), 1);   // exact hit
  EXPECT_EQ(ring.OwnerOf(101), 2);
  EXPECT_EQ(ring.OwnerOf(300), 2);
  EXPECT_EQ(ring.OwnerOf(301), 1);   // wraps to the first token
}

TEST(TokenRingTest, NaturalEndpointsDistinctOwnersClockwise) {
  TokenRing ring;
  ring.AddNode(1, {100, 400});
  ring.AddNode(2, {200});
  ring.AddNode(3, {300});
  // Key 150 -> owner of 200 is node 2, then 300 (node 3), then 400 (node 1).
  std::vector<NodeId> eps = ring.NaturalEndpointsForKey(150, 3);
  EXPECT_EQ(eps, (std::vector<NodeId>{2, 3, 1}));
  // Vnodes: duplicate owners are skipped.
  std::vector<NodeId> two = ring.NaturalEndpointsForKey(350, 2);
  EXPECT_EQ(two, (std::vector<NodeId>{1, 2}));
}

TEST(TokenRingTest, NaturalEndpointsFewerNodesThanRf) {
  TokenRing ring;
  ring.AddNode(1, {100});
  ring.AddNode(2, {200});
  std::vector<NodeId> eps = ring.NaturalEndpointsForKey(0, 5);
  EXPECT_EQ(eps.size(), 2u);
}

TEST(TokenRingTest, EmptyRingReturnsNoEndpoints) {
  TokenRing ring;
  EXPECT_TRUE(ring.NaturalEndpointsForKey(1, 3).empty());
}

TEST(TokenRingTest, DigestChangesWithContent) {
  TokenRing a;
  a.AddNode(1, {100});
  TokenRing b;
  b.AddNode(1, {100});
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
  b.AddNode(2, {200});
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
}

TEST(TokenRingTest, DigestIndependentOfInsertionOrder) {
  TokenRing a;
  a.AddNode(1, {100});
  a.AddNode(2, {200});
  TokenRing b;
  b.AddNode(2, {200});
  b.AddNode(1, {100});
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
}

TEST(TokenRingTest, CloneIsDeepCopy) {
  TokenRing a;
  a.AddNode(1, {100});
  TokenRing b = a.Clone();
  b.AddNode(2, {200});
  EXPECT_EQ(a.num_entries(), 1u);
  EXPECT_EQ(b.num_entries(), 2u);
}

TEST(TokenRingTest, DuplicateNodeDies) {
  TokenRing ring;
  ring.AddNode(1, {100});
  EXPECT_DEATH(ring.AddNode(1, {200}), "already in ring");
  EXPECT_DEATH(ring.RemoveNode(9), "not in ring");
}

TEST(GenerateTokensTest, DeterministicAndDistinct) {
  std::vector<Token> a = GenerateTokens(5, 16, 99);
  std::vector<Token> b = GenerateTokens(5, 16, 99);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
  std::set<Token> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 16u);
  EXPECT_NE(GenerateTokens(6, 16, 99), a);
  EXPECT_NE(GenerateTokens(5, 16, 100), a);
}

// Property: the ranges of all entries partition the key space — every key
// belongs to exactly one entry's range, and that entry is OwnerIndex(key).
class RingPartitionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingPartitionTest, RangesPartitionKeySpace) {
  auto [n, p] = GetParam();
  TokenRing ring;
  for (NodeId id = 0; id < n; ++id) {
    ring.AddNode(id, GenerateTokens(id, p, 1234));
  }
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    Token key = rng.Next();
    size_t covering = 0;
    size_t covering_index = 0;
    for (size_t i = 0; i < ring.num_entries(); ++i) {
      if (ring.RangeOfEntry(i).Contains(key)) {
        ++covering;
        covering_index = i;
      }
    }
    ASSERT_EQ(covering, 1u) << "key " << key << " covered by " << covering << " ranges";
    EXPECT_EQ(covering_index, ring.OwnerIndex(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, RingPartitionTest,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(2, 1),
                                           std::make_tuple(5, 1),
                                           std::make_tuple(5, 8),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(32, 16)));

}  // namespace
}  // namespace scalecheck
