// Rebalance (decommission + immediate re-join) under crash/restart faults.
// The adverse schedules here historically exposed stale-lifecycle-lambda
// state: a continuation scheduled by a node's previous incarnation firing
// against its restarted self, leaving a zombie endpoint in ring views. The
// incarnation guard in Node keeps these runs clean.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

constexpr int kNodes = 12;
constexpr uint64_t kSeed = 4242;

BugSpec RebalanceSpec() {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.calc_version = CalcVersion::kV3C3881Fix;
  spec.workload = WorkloadKind::kRebalance;
  return spec;
}

FaultPlan CrashRestart(NodeId victim, int at_s, int down_s) {
  FaultPlan plan;
  plan.name = "crash-restart";
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = VirtualDuration::Seconds(at_s);
  ev.duration = VirtualDuration::Seconds(down_s);
  ev.nodes_a = {victim};
  plan.events.push_back(ev);
  return plan;
}

TEST(RebalanceFaultsTest, ViewerCrashRestartLeavesNoZombie) {
  // Crash an observer across the target's LEAVING->LEFT->re-join window; the
  // restarted observer re-learns the membership from scratch and must end up
  // with the target NORMAL on its new tokens, not resurrected on its old.
  BugSpec spec = RebalanceSpec();
  spec.custom_faults = CrashRestart(/*victim=*/9, /*at_s=*/55, /*down_s=*/20);
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_EQ(result.restarted_nodes, 1);
  ASSERT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
  EXPECT_EQ(RunExitCode(result), 0);
}

TEST(RebalanceFaultsTest, TargetCrashMidTransitionRejoinsCleanly) {
  // Crash the rebalancing node itself while it is LEAVING (starts at 20s,
  // LEFT due at 50s; crash 30s..60s). Its pre-crash incarnation scheduled
  // the LEFT announcement and the re-join — both must be suppressed by the
  // incarnation guard, and the restarted node simply rejoins NORMAL.
  BugSpec spec = RebalanceSpec();
  spec.custom_faults =
      CrashRestart(/*victim=*/kNodes / 2, /*at_s=*/30, /*down_s=*/30);
  RunResult result = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_EQ(result.restarted_nodes, 1);
  ASSERT_TRUE(result.invariants.checked);
  EXPECT_TRUE(result.invariants.ok()) << result.invariants.ToJson();
}

TEST(RebalanceFaultsTest, FaultedRebalanceIsDeterministic) {
  BugSpec spec = RebalanceSpec();
  spec.custom_faults = CrashRestart(/*victim=*/9, /*at_s=*/55, /*down_s=*/20);
  RunResult a = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  RunResult b = RunSingle(spec, kNodes, RunMode::kColocated, kSeed);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

}  // namespace
}  // namespace scalecheck
