// FaultPlan / FaultInjector behavior: plans are seed-deterministic, every
// fault kind actually perturbs the deployment it targets, heals undo the
// perturbation, and the retrying KV client never loses a request.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/faults/fault_plan.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

BugSpec SteadySpec(const char* plan, double kv_rate = 0.0) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(180);
  spec.fault_plan = plan;
  spec.kv_ops_per_second = kv_rate;
  return spec;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  FaultPlan a = FaultPlan::StandardChaos(64, 7);
  FaultPlan b = FaultPlan::StandardChaos(64, 7);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at.nanos(), b.events[i].at.nanos());
    EXPECT_EQ(a.events[i].nodes_a, b.events[i].nodes_a);
  }
  FaultPlan c = FaultPlan::StandardChaos(64, 8);
  EXPECT_NE(a.events[0].at.nanos(), c.events[0].at.nanos());
}

TEST(FaultPlanTest, VictimsAvoidContactsAndWorkloadTarget) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    FaultPlan plan = FaultPlan::StandardChaos(16, seed);
    for (const FaultEvent& ev : plan.events) {
      if (ev.kind == FaultKind::kCrash || ev.kind == FaultKind::kSlowNode ||
          ev.kind == FaultKind::kMemoryPressure) {
        for (NodeId v : ev.nodes_a) {
          EXPECT_GE(v, 3) << "contact point chosen as victim";
          EXPECT_NE(v, 8) << "workload target chosen as victim";
        }
      }
    }
  }
}

TEST(FaultInjectorTest, PartitionBlocksTrafficAndHeals) {
  BugSpec spec = SteadySpec("partition");
  // The stock 20s partition sits at the phi-conviction edge (silence must
  // exceed ~18x the mean heartbeat interval); stretch it so conviction is
  // certain and the test asserts behavior, not threshold luck.
  FaultPlan plan = spec.MakeFaultPlan(16, 42);
  plan.events.at(0).duration = VirtualDuration::Seconds(60);
  RunOptions run_options;
  run_options.faults = &plan;
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42, run_options);
  EXPECT_EQ(result.fault_events_applied, 1);
  EXPECT_EQ(result.fault_events_healed, 1);
  EXPECT_GT(result.messages_blocked, 0u);
  // The islanded nodes get convicted and must come back after the heal.
  EXPECT_GT(result.flaps, 0) << result.Summary();
  EXPECT_TRUE(result.settled) << result.Summary();
}

TEST(FaultInjectorTest, CrashRestartBringsTheNodeBack) {
  BugSpec spec = SteadySpec("crash-restart");
  Cluster::Options options;
  options.config = spec.MakeConfig(16, RunMode::kRealScale, 42);
  options.workload = spec.MakeWorkload(16);
  options.faults = spec.MakeFaultPlan(16, 42);
  NodeId victim = options.faults.events.at(0).nodes_a.at(0);
  Cluster cluster(std::move(options));
  RunResult result = cluster.Run();
  EXPECT_EQ(result.crashed_nodes, 1);
  EXPECT_EQ(result.restarted_nodes, 1);
  Node* node = cluster.node(victim);
  EXPECT_FALSE(node->crashed());
  EXPECT_EQ(node->my_status(), StatusKind::kNormal);
  EXPECT_TRUE(result.settled) << result.Summary();
  // Conviction on death + recovery on restart shows up as flapping.
  EXPECT_GT(result.flaps, 0) << result.Summary();
}

TEST(FaultInjectorTest, SlowNodeDegradesAndRecovers) {
  BugSpec spec = SteadySpec("slow-node");
  Cluster::Options options;
  options.config = spec.MakeConfig(16, RunMode::kRealScale, 42);
  options.workload = spec.MakeWorkload(16);
  options.faults = spec.MakeFaultPlan(16, 42);
  NodeId victim = options.faults.events.at(0).nodes_a.at(0);
  Cluster cluster(std::move(options));
  RunResult result = cluster.Run();
  EXPECT_EQ(result.fault_events_applied, 1);
  EXPECT_EQ(result.fault_events_healed, 1);
  // Healed: the machine runs at full speed again.
  EXPECT_DOUBLE_EQ(cluster.machines().MachineOf(victim)->cpu().speed_factor(), 1.0);
  EXPECT_TRUE(result.settled) << result.Summary();
}

TEST(FaultInjectorTest, MemoryPressureTriggersOom) {
  BugSpec spec = SteadySpec("memory-pressure");
  // The standard ballast (6 GB) is sized to squeeze, not kill; blow past the
  // machine budget to prove the existing OOM -> crash path fires.
  FaultPlan plan = spec.MakeFaultPlan(16, 42);
  plan.events.at(0).ballast_bytes = 1LL << 40;
  RunOptions run_options;
  run_options.faults = &plan;
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42, run_options);
  EXPECT_EQ(result.crashed_nodes, 1) << result.Summary();
}

TEST(FaultInjectorTest, KvConservationUnderStandardChaos) {
  BugSpec spec = SteadySpec("standard-chaos", /*kv_rate=*/50.0);
  spec.horizon = VirtualDuration::Seconds(240);
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42);
  EXPECT_GT(result.kv_issued, 0);
  // No request vanishes: each ends OK, ends as a counted give-up, or is
  // still in flight at the horizon.
  EXPECT_EQ(result.kv_issued, result.kv_ok + result.kv_unavailable +
                                  result.kv_timeout + result.kv_inflight_at_stop);
  EXPECT_EQ(result.kv_gave_up, result.kv_unavailable + result.kv_timeout);
  // Chaos makes some attempts fail; the bounded-retry client must have
  // actually retried.
  EXPECT_GT(result.kv_retries, 0);
}

}  // namespace
}  // namespace scalecheck
