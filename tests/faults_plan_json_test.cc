// FaultPlan / FaultEvent JSON serialization and the strict round-trip parse
// (satellite of the ChaosSearch PR: repro artifacts embed plans this way).

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/faults/fault_plan.h"

namespace scalecheck {
namespace {

TEST(FaultPlanJsonTest, StandardChaosRoundTripsFieldForField) {
  for (uint64_t seed : {1ULL, 42ULL, 0x5ca1ec4ecULL}) {
    FaultPlan plan = FaultPlan::StandardChaos(16, seed);
    ASSERT_FALSE(plan.empty());
    Result<FaultPlan> parsed = FaultPlan::FromJsonText(plan.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == plan) << "seed " << seed;
    // Re-serialization is byte-identical, so an artifact survives any number
    // of parse/emit cycles unchanged.
    EXPECT_EQ(parsed.value().ToJson(), plan.ToJson());
  }
}

TEST(FaultPlanJsonTest, SingleFaultPlansRoundTrip) {
  for (const char* name :
       {"partition", "crash-restart", "slow-node", "memory-pressure"}) {
    FaultPlan plan = FaultPlan::ByName(name, 12, 7);
    Result<FaultPlan> parsed = FaultPlan::FromJsonText(plan.ToJson());
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed.value() == plan) << name;
  }
}

TEST(FaultPlanJsonTest, EmptyPlanRoundTrips) {
  FaultPlan plan;
  plan.name = "none";
  Result<FaultPlan> parsed = FaultPlan::FromJsonText(plan.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == plan);
}

TEST(FaultPlanJsonTest, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kPartition, FaultKind::kLinkDegrade, FaultKind::kCrash,
        FaultKind::kSlowNode, FaultKind::kMemoryPressure}) {
    Result<FaultKind> back = FaultKindFromName(FaultKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(FaultKindFromName("meteor-strike").ok());
  EXPECT_FALSE(FaultKindFromName("").ok());
}

// Helper: serialize a valid one-event plan, apply `mutate` to the JSON text,
// and expect the strict parse to reject the result.
void ExpectRejected(const std::string& json, const std::string& what) {
  Result<FaultPlan> parsed = FaultPlan::FromJsonText(json);
  EXPECT_FALSE(parsed.ok()) << "accepted " << what << ": " << json;
}

std::string ValidPlanJson() {
  FaultPlan plan;
  plan.name = "p";
  FaultEvent ev;
  ev.kind = FaultKind::kCrash;
  ev.at = VirtualDuration::Seconds(30);
  ev.duration = VirtualDuration::Seconds(10);
  ev.nodes_a = {3};
  plan.events.push_back(ev);
  return plan.ToJson();
}

TEST(FaultPlanJsonTest, StrictParseRejectsCorruptEvents) {
  const std::string good = ValidPlanJson();
  ASSERT_TRUE(FaultPlan::FromJsonText(good).ok());

  auto replace = [&good](const std::string& from, const std::string& to) {
    std::string s = good;
    auto pos = s.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    s.replace(pos, from.size(), to);
    return s;
  };

  ExpectRejected(replace("\"kind\":\"crash\"", "\"kind\":\"meteor\""),
                 "unknown kind");
  ExpectRejected(replace("\"kind\":\"crash\"", "\"kind\":2"),
                 "numeric kind");
  ExpectRejected(replace("\"kind\"", "\"kinds\""), "unknown key");
  ExpectRejected(replace("\"cpu_factor\":1,", ""), "missing key");
  ExpectRejected(replace("\"at_ns\":30000000000", "\"at_ns\":-1"),
                 "negative at");
  ExpectRejected(
      replace("\"at_ns\":30000000000", "\"at_ns\":99999999999999999"),
      "at beyond kMaxEventTime");
  ExpectRejected(replace("\"extra_loss\":0", "\"extra_loss\":1.5"),
                 "extra_loss > 1");
  ExpectRejected(replace("\"nodes_a\":[3]", "\"nodes_a\":[]"),
                 "empty nodes_a");
  ExpectRejected(replace("\"nodes_a\":[3]", "\"nodes_a\":[-1]"),
                 "negative node id");
  ExpectRejected(replace("\"cpu_factor\":1", "\"cpu_factor\":0"),
                 "cpu_factor zero");
  ExpectRejected(replace("\"ballast_bytes\":0", "\"ballast_bytes\":-4"),
                 "negative ballast");
  ExpectRejected("{\"events\":[]}", "missing plan name");
  ExpectRejected("[]", "non-object plan");
}

}  // namespace
}  // namespace scalecheck
