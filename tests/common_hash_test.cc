#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/hash.h"

namespace scalecheck {
namespace {

TEST(Fnv1a, KnownProperties) {
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64(std::string_view("hello")));
}

TEST(Mix64, BijectiveSmoke) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCombineFn, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(DigestTest, DeterministicAcrossInstances) {
  Digest a;
  a.Add(int64_t{42}).Add(3.14).Add(std::string_view("ring")).Add(true);
  Digest b;
  b.Add(int64_t{42}).Add(3.14).Add(std::string_view("ring")).Add(true);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(DigestTest, TypeTagsDistinguishValues) {
  Digest signed_d;
  signed_d.Add(int64_t{1});
  Digest unsigned_d;
  unsigned_d.Add(uint64_t{1});
  EXPECT_NE(signed_d.Finish(), unsigned_d.Finish());
}

TEST(DigestTest, OrderSensitive) {
  Digest ab;
  ab.Add(int64_t{1}).Add(int64_t{2});
  Digest ba;
  ba.Add(int64_t{2}).Add(int64_t{1});
  EXPECT_NE(ab.Finish(), ba.Finish());
}

TEST(DigestTest, StringBoundariesMatter) {
  // ("ab", "c") must differ from ("a", "bc").
  Digest x;
  x.Add(std::string_view("ab")).Add(std::string_view("c"));
  Digest y;
  y.Add(std::string_view("a")).Add(std::string_view("bc"));
  EXPECT_NE(x.Finish(), y.Finish());
}

TEST(DigestTest, NegativeZeroNormalized) {
  Digest pos;
  pos.Add(0.0);
  Digest neg;
  neg.Add(-0.0);
  EXPECT_EQ(pos.Finish(), neg.Finish());
}

TEST(DigestTest, RangeIncludesLength) {
  Digest one;
  one.AddRange(std::vector<uint64_t>{7});
  Digest two;
  two.AddRange(std::vector<uint64_t>{7, 7});
  EXPECT_NE(one.Finish(), two.Finish());
}

TEST(DigestTest, CollisionSmoke) {
  // 100k distinct inputs, no collisions expected from a 128-bit digest.
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int64_t i = 0; i < 100000; ++i) {
    Digest d;
    d.Add(i).Add(i * 31);
    DigestValue v = d.Finish();
    EXPECT_TRUE(seen.emplace(v.lo, v.hi).second) << "collision at " << i;
  }
}

TEST(DigestValueTest, HexRendering) {
  DigestValue v{0x1234, 0xabcd};
  EXPECT_EQ(v.ToHex(), "000000000000abcd0000000000001234");
}

TEST(DigestValueTest, HashUsableInMaps) {
  DigestValueHash h;
  DigestValue a{1, 2};
  DigestValue b{1, 3};
  EXPECT_NE(h(a), h(b));
}

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The standard CRC-32/IEEE check vector: crc32("123456789") = 0xCBF43926.
  // Pins the implementation to the real polynomial (a home-grown variant
  // would still "detect corruption" in tests but break cross-tool checking
  // of memo DB files).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const char* s = "123456789";
  uint32_t partial = Crc32(s, 4);
  EXPECT_EQ(Crc32(s + 4, 5, partial), Crc32(s, 9));
  EXPECT_NE(Crc32(s, 9), Crc32(s, 8));
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace scalecheck
