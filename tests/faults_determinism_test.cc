// Determinism under fault injection: identical seed + identical FaultPlan
// must produce a byte-identical RunResult::ToJson() — including when the
// runs execute through the host-parallel ExperimentSuite, where `jobs` may
// never change a single output byte.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/experiment_suite.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

BugSpec ChaosSpec() {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(240);
  spec.fault_plan = "standard-chaos";
  spec.kv_ops_per_second = 25.0;
  return spec;
}

TEST(FaultsDeterminismTest, SameSeedSamePlanByteIdenticalJson) {
  BugSpec spec = ChaosSpec();
  RunResult a = RunSingle(spec, 16, RunMode::kRealScale, 1234);
  RunResult b = RunSingle(spec, 16, RunMode::kRealScale, 1234);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(FaultsDeterminismTest, DifferentSeedDifferentSchedule) {
  BugSpec spec = ChaosSpec();
  RunResult a = RunSingle(spec, 16, RunMode::kRealScale, 1);
  RunResult b = RunSingle(spec, 16, RunMode::kRealScale, 2);
  // A different seed moves every fault time, so the message stream differs.
  EXPECT_NE(a.messages_sent, b.messages_sent);
}

TEST(FaultsDeterminismTest, ExplicitPlanOverrideMatchesNamedPlan) {
  BugSpec spec = ChaosSpec();
  FaultPlan plan = spec.MakeFaultPlan(16, 1234);
  RunOptions run_options;
  run_options.faults = &plan;
  RunResult with_override = RunSingle(spec, 16, RunMode::kRealScale, 1234, run_options);
  RunResult with_name = RunSingle(spec, 16, RunMode::kRealScale, 1234);
  EXPECT_EQ(with_override.ToJson(), with_name.ToJson());
}

TEST(FaultsDeterminismTest, MemoizeAndReplayApplyTheSameSchedule) {
  // The FaultPlan rides through BugSpec, so memoize and replay see the
  // identical chaos; replay must track the real run's fault counters.
  BugSpec spec = ChaosSpec();
  ScaleCheckRunner runner(spec, 77);
  ScaleCheckResult full = runner.RunFull(16);
  EXPECT_EQ(full.real.fault_events_applied, full.replay.fault_events_applied);
  EXPECT_EQ(full.real.fault_events_healed, full.replay.fault_events_healed);
  EXPECT_EQ(full.real.crashed_nodes, full.replay.crashed_nodes);
  EXPECT_EQ(full.real.restarted_nodes, full.replay.restarted_nodes);
  EXPECT_EQ(full.memoize.fault_events_applied, full.real.fault_events_applied);
}

TEST(FaultsDeterminismTest, IslandPlanEscapeHatchDrawsAreJobsInvariant) {
  // The gossip-to-unreachable escape hatch draws from each node's own rng_
  // stream, so host parallelism must not move a single Bernoulli draw: the
  // islanding plan (conviction + heal + escape-hatch recovery) must be
  // byte-identical at any --jobs.
  BugSpec spec = ChaosSpec();
  spec.fault_plan = "island";
  spec.horizon = VirtualDuration::Seconds(150);
  auto run_suite = [&spec](int jobs) {
    ExperimentSpec grid;
    grid.bugs = {spec};
    grid.modes = {RunMode::kRealScale, RunMode::kColocated};
    grid.scales = {12, 16};
    grid.seeds = {5, 6};
    grid.jobs = jobs;
    return ExperimentSuite(grid).Run().ToJson();
  };
  std::string serial = run_suite(1);
  std::string parallel = run_suite(4);
  EXPECT_EQ(serial, parallel);
  // The plan actually bit in every run: no cell reports zero blocked frames.
  EXPECT_EQ(serial.find("\"messages_blocked\":0,"), std::string::npos);
}

TEST(FaultsDeterminismTest, SuiteParallelismNeverChangesAByte) {
  BugSpec spec = ChaosSpec();
  spec.horizon = VirtualDuration::Seconds(210);
  auto run_suite = [&spec](int jobs) {
    ExperimentSpec grid;
    grid.bugs = {spec};
    grid.modes = {RunMode::kRealScale, RunMode::kColocated, RunMode::kMemoize,
                  RunMode::kPilReplay};
    grid.scales = {12, 16};
    grid.seeds = {5, 6};
    grid.jobs = jobs;
    return ExperimentSuite(grid).Run().ToJson();
  };
  std::string serial = run_suite(1);
  std::string parallel = run_suite(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace scalecheck
