#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu_model.h"

namespace scalecheck {
namespace {

CpuModel::Config OneCore() {
  CpuModel::Config cfg;
  cfg.cores = 1.0;
  cfg.speed = 1e9;
  cfg.ctx_switch_penalty = 0.0;
  return cfg;
}

TEST(CpuModelTest, SingleTaskTakesWorkOverSpeed) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  bool done = false;
  cpu.StartTask(2'000'000'000, [&] { done = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.Now().seconds(), 2.0, 1e-6);
}

TEST(CpuModelTest, ProcessorSharingDoublesDuration) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  std::vector<double> finish;
  cpu.StartTask(1'000'000'000, [&] { finish.push_back(sim.Now().seconds()); });
  cpu.StartTask(1'000'000'000, [&] { finish.push_back(sim.Now().seconds()); });
  sim.RunUntilIdle();
  ASSERT_EQ(finish.size(), 2u);
  // Two equal 1s tasks sharing one core both finish at ~2s.
  EXPECT_NEAR(finish[0], 2.0, 1e-6);
  EXPECT_NEAR(finish[1], 2.0, 1e-6);
}

TEST(CpuModelTest, UnequalTasksFinishInWorkOrder) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  std::vector<std::pair<int, double>> finish;
  cpu.StartTask(500'000'000, [&] { finish.emplace_back(1, sim.Now().seconds()); });
  cpu.StartTask(1'000'000'000, [&] { finish.emplace_back(2, sim.Now().seconds()); });
  sim.RunUntilIdle();
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_EQ(finish[0].first, 1);
  // Short task: shares until it has 0.5e9 service => finishes at 1.0s.
  EXPECT_NEAR(finish[0].second, 1.0, 1e-6);
  // Long task: 0.5e9 served at t=1, remaining 0.5e9 alone => 1.5s.
  EXPECT_NEAR(finish[1].second, 1.5, 1e-6);
}

TEST(CpuModelTest, MultipleCoresRunInParallel) {
  Simulator sim(1);
  CpuModel::Config cfg = OneCore();
  cfg.cores = 4.0;
  CpuModel cpu(&sim, cfg);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cpu.StartTask(1'000'000'000, [&] { ++done; });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(sim.Now().seconds(), 1.0, 1e-6);  // no contention
}

TEST(CpuModelTest, ContextSwitchPenaltySlowsOversubscription) {
  Simulator sim(1);
  CpuModel::Config cfg = OneCore();
  cfg.ctx_switch_penalty = 0.5;
  CpuModel cpu(&sim, cfg);
  // 3 tasks on 1 core: oversubscription (3-1)/1 = 2, divisor 1 + 0.5*2 = 2.
  for (int i = 0; i < 3; ++i) {
    cpu.StartTask(1'000'000'000, [] {});
  }
  sim.RunUntilIdle();
  // Without penalty: 3s. With divisor 2: 6s.
  EXPECT_NEAR(sim.Now().seconds(), 6.0, 1e-5);
}

TEST(CpuModelTest, CurrentStretchReflectsLoad) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  EXPECT_DOUBLE_EQ(cpu.CurrentStretch(), 1.0);
  cpu.StartTask(1'000'000'000, [] {});
  EXPECT_DOUBLE_EQ(cpu.CurrentStretch(), 1.0);
  cpu.StartTask(1'000'000'000, [] {});
  EXPECT_DOUBLE_EQ(cpu.CurrentStretch(), 2.0);
  sim.RunUntilIdle();
}

TEST(CpuModelTest, CancelPreventsCompletion) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  bool done = false;
  CpuModel::TaskId id = cpu.StartTask(1'000'000'000, [&] { done = true; });
  EXPECT_TRUE(cpu.CancelTask(id));
  EXPECT_FALSE(cpu.CancelTask(id));
  sim.RunUntilIdle();
  EXPECT_FALSE(done);
  EXPECT_EQ(cpu.active_count(), 0);
}

TEST(CpuModelTest, CancelSpeedsUpRemainingTask) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  double finish = 0;
  cpu.StartTask(1'000'000'000, [&] { finish = sim.Now().seconds(); });
  CpuModel::TaskId hog = cpu.StartTask(10'000'000'000, [] {});
  sim.ScheduleAfter(VirtualDuration::Seconds(1), [&] { cpu.CancelTask(hog); });
  sim.RunUntilIdle();
  // Shares for 1s (0.5e9 done), then alone for 0.5s => 1.5s.
  EXPECT_NEAR(finish, 1.5, 1e-5);
}

TEST(CpuModelTest, ZeroWorkCompletesImmediately) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  bool done = false;
  cpu.StartTask(0, [&] { done = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_LE(sim.Now().seconds(), 1e-6);
}

TEST(CpuModelTest, UtilizationAccountsBusyTime) {
  Simulator sim(1);
  CpuModel::Config cfg = OneCore();
  cfg.cores = 2.0;
  CpuModel cpu(&sim, cfg);
  cpu.StartTask(1'000'000'000, [] {});  // 1s on one of two cores
  sim.RunUntilIdle();
  sim.ScheduleAfter(VirtualDuration::Seconds(1), [] {});  // idle second
  sim.RunUntilIdle();
  // 1 core-second busy over 2 cores * 2 seconds = 25%.
  EXPECT_NEAR(cpu.Utilization(), 0.25, 1e-6);
}

TEST(CpuModelTest, ConservationOfWork) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  const WorkUnits kTotal = 3'700'000'000;
  int done = 0;
  cpu.StartTask(kTotal / 4, [&] { ++done; });
  cpu.StartTask(kTotal / 4, [&] { ++done; });
  cpu.StartTask(kTotal / 2, [&] { ++done; });
  sim.RunUntilIdle();
  EXPECT_EQ(done, 3);
  // One core, no penalty: total duration == total work / speed.
  EXPECT_NEAR(sim.Now().seconds(), static_cast<double>(kTotal) / 1e9, 1e-5);
  EXPECT_NEAR(cpu.busy_core_seconds(), static_cast<double>(kTotal) / 1e9, 1e-5);
}

// Regression: tiny residual work must never spin the event loop at a fixed
// instant (found via a hang in the sfind profiling runs).
TEST(CpuModelTest, TinyWorkValuesMakeProgress) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    cpu.StartTask(i % 3, [&] { ++done; });
  }
  uint64_t executed = sim.Run(VirtualTime::Zero() + VirtualDuration::Seconds(1));
  EXPECT_EQ(done, 1000);
  EXPECT_LT(executed, 100000u);  // no spin
}

TEST(CpuModelTest, PeakActiveTracksHighWaterMark) {
  Simulator sim(1);
  CpuModel cpu(&sim, OneCore());
  for (int i = 0; i < 5; ++i) {
    cpu.StartTask(1000, [] {});
  }
  sim.RunUntilIdle();
  EXPECT_EQ(cpu.peak_active(), 5);
  EXPECT_EQ(cpu.tasks_started(), 5u);
}

}  // namespace
}  // namespace scalecheck
