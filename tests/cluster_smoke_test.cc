// End-to-end smoke tests: small clusters must behave sanely in every mode.

#include <gtest/gtest.h>

#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

TEST(ClusterSmoke, SteadyStateHasNoFlaps) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.workload = WorkloadKind::kSteadyState;
  spec.horizon = VirtualDuration::Seconds(120);
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42);
  EXPECT_EQ(result.flaps, 0) << result.Summary();
  EXPECT_TRUE(result.settled);
  EXPECT_GT(result.messages_delivered, 1000u);
}

TEST(ClusterSmoke, DecommissionSettlesAtSmallScaleWithoutFlaps) {
  BugSpec spec = BugCatalog::Get("C3831");
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42);
  EXPECT_TRUE(result.settled) << result.Summary();
  EXPECT_EQ(result.flaps, 0) << result.Summary();
  EXPECT_GT(result.calc_invocations, 0);
}

TEST(ClusterSmoke, ScaleOutSettlesAtSmallScale) {
  BugSpec spec = BugCatalog::Get("C3881");
  RunResult result = RunSingle(spec, 16, RunMode::kRealScale, 42);
  EXPECT_TRUE(result.settled) << result.Summary();
  EXPECT_GT(result.calc_invocations, 0);
}

TEST(ClusterSmoke, DeterministicAcrossRuns) {
  BugSpec spec = BugCatalog::Get("C3831");
  RunResult a = RunSingle(spec, 12, RunMode::kRealScale, 7);
  RunResult b = RunSingle(spec, 12, RunMode::kRealScale, 7);
  EXPECT_EQ(a.flaps, b.flaps);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.test_duration.nanos(), b.test_duration.nanos());
}

TEST(ClusterSmoke, MemoizeThenReplayProducesHits) {
  BugSpec spec = BugCatalog::Get("C3831");
  ScaleCheckRunner runner(spec, 99);
  ScaleCheckResult full = runner.RunFull(12);
  EXPECT_TRUE(full.replay.settled) << full.replay.Summary();
  EXPECT_GT(full.memo.records, 0u);
  EXPECT_GT(full.replay.pil.replay_hits, 0u) << full.replay.Summary();
}

}  // namespace
}  // namespace scalecheck
