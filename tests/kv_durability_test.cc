// Durable data path riding on a live cluster: WAL crash/restart recovery,
// the planted ack-before-sync bug the kv-durability invariant catches,
// hinted handoff (replay on recovery, TTL expiry), and the per-consistency
// accounting exported through RunResult.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/kv/kv_service.h"

namespace scalecheck {
namespace {

Cluster::Options DurableKvCluster(int n, VirtualDuration horizon) {
  ClusterConfig config;
  config.initial_nodes = n;
  config.calc_version = CalcVersion::kV3C3881Fix;
  config.run_mode = RunMode::kRealScale;
  config.enable_kv = true;
  config.kv_wal = true;
  config.seed = 31337;
  WorkloadSpec wl;
  wl.kind = WorkloadKind::kSteadyState;
  wl.target = n / 2;
  wl.horizon = horizon;
  Cluster::Options options;
  options.config = config;
  options.workload = wl;
  return options;
}

bool Violated(const RunResult& r, const std::string& name) {
  for (const InvariantViolation& v : r.invariants.violations) {
    if (v.invariant == name) {
      return true;
    }
  }
  return false;
}

// With the WAL on and ALL consistency, every replica acks only after its
// group-commit sync — so crashing an acker right after the client ack and
// restarting it must recover the write from the durable prefix.
TEST(KvDurabilityTest, AckedWriteSurvivesAckerCrashRestart) {
  Cluster::Options options = DurableKvCluster(8, VirtualDuration::Seconds(120));
  options.config.kv_consistency = KvConsistency::kAll;
  Cluster cluster(std::move(options));
  KvOutcome outcome = KvOutcome::kTimeout;
  NodeId victim = kInvalidNode;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(99), 3);
    ASSERT_EQ(replicas.size(), 3u);
    victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    cluster.node(0)->kv()->Write(99, "durable", [&](KvOutcome o, std::string) {
      outcome = o;
      // ALL consistency: the victim is necessarily an acker, and its ack
      // implies its sync already ran. Crash it in the ack's shadow.
      cluster.node(victim)->Crash();
      cluster.sim().ScheduleAfter(VirtualDuration::Seconds(20), [&] {
        cluster.node(victim)->Restart({0, 1, 2});
      });
    });
  });
  RunResult r = cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  EXPECT_FALSE(Violated(r, "kv-durability")) << r.invariants.ToJson();
  const KvService* kv = cluster.node(victim)->kv();
  EXPECT_GT(kv->storage().TimestampOf(99), 0);
  EXPECT_GT(kv->stats().wal_recovered_records, 0);
}

// Same crash schedule with the planted bug: the replica acks at append time,
// the crash lands inside the 250ms group-commit window, and the restarted
// replica is missing a write it acknowledged — the kv-durability invariant
// must say so.
TEST(KvDurabilityTest, PlantedAckBeforeSyncViolatesKvDurability) {
  Cluster::Options options = DurableKvCluster(8, VirtualDuration::Seconds(120));
  options.config.kv_consistency = KvConsistency::kAll;
  options.config.check.plant_kv_ack_before_sync = true;
  Cluster cluster(std::move(options));
  KvOutcome outcome = KvOutcome::kTimeout;
  NodeId victim = kInvalidNode;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(99), 3);
    ASSERT_EQ(replicas.size(), 3u);
    victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    cluster.node(0)->kv()->Write(99, "doomed", [&](KvOutcome o, std::string) {
      outcome = o;
      cluster.node(victim)->Crash();
      cluster.sim().ScheduleAfter(VirtualDuration::Seconds(20), [&] {
        cluster.node(victim)->Restart({0, 1, 2});
      });
    });
  });
  RunResult r = cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  EXPECT_TRUE(Violated(r, "kv-durability")) << r.invariants.ToJson();
  // The lost record is visible in the stats trail too.
  EXPECT_GE(cluster.node(victim)->kv()->stats().wal_lost_records, 1);
}

// A coordinator that writes around a dead replica queues a hint and replays
// it — with the ORIGINAL timestamp — once the failure detector marks the
// replica alive again.
TEST(KvDurabilityTest, HintQueuedForDeadReplicaReplaysOnRecovery) {
  Cluster cluster(DurableKvCluster(8, VirtualDuration::Seconds(150)));
  KvOutcome outcome = KvOutcome::kTimeout;
  NodeId victim = kInvalidNode;
  NodeId coordinator = kInvalidNode;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(424), 3);
    ASSERT_EQ(replicas.size(), 3u);
    victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    // Coordinate from a live replica so at least one acker holds the value.
    for (NodeId replica : replicas) {
      if (replica != victim) {
        coordinator = replica;
        break;
      }
    }
    cluster.node(victim)->Crash();
  });
  // Write long after the crash: the coordinator's failure detector has
  // convicted the victim, so the write proceeds on the live pair (QUORUM)
  // and a hint is queued for the dead one.
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(50), [&] {
    cluster.node(coordinator)
        ->kv()
        ->Write(424, "handed-off", [&](KvOutcome o, std::string) { outcome = o; });
  });
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(80), [&] {
    cluster.node(victim)->Restart({0, 1, 2});
  });
  RunResult r = cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  const KvService* coord_kv = cluster.node(coordinator)->kv();
  EXPECT_GE(coord_kv->stats().hints_queued, 1);
  EXPECT_GE(coord_kv->stats().hints_replayed, 1);
  EXPECT_EQ(coord_kv->stats().hints_expired, 0);
  EXPECT_EQ(coord_kv->hint_queue_depth(), 0);
  // The replayed hint carried the original timestamp: the recovered replica
  // converged to the same version the coordinating replica holds.
  int64_t replayed = cluster.node(victim)->kv()->storage().TimestampOf(424);
  EXPECT_GT(replayed, 0);
  EXPECT_EQ(replayed, coord_kv->storage().TimestampOf(424));
  // Counters surface in RunResult for the experiment tables.
  EXPECT_GE(r.kv_hints_queued, 1);
  EXPECT_GE(r.kv_hints_replayed, 1);
}

// A hint that outlives its TTL is dropped at replay time, not delivered:
// the recovered replica converges through read repair / later writes, never
// through stale hints.
TEST(KvDurabilityTest, HintExpiresAfterTtlAndIsNotDelivered) {
  Cluster::Options options = DurableKvCluster(8, VirtualDuration::Seconds(150));
  options.config.kv_hint_ttl = VirtualDuration::Seconds(10);
  Cluster cluster(std::move(options));
  KvOutcome outcome = KvOutcome::kTimeout;
  NodeId victim = kInvalidNode;
  NodeId coordinator = kInvalidNode;
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(5), [&] {
    std::vector<NodeId> replicas =
        cluster.node(0)->ring().NaturalEndpointsForKey(KvTokenForKey(424), 3);
    ASSERT_EQ(replicas.size(), 3u);
    victim = replicas[0] == 0 ? replicas[1] : replicas[0];
    for (NodeId replica : replicas) {
      if (replica != victim) {
        coordinator = replica;
        break;
      }
    }
    cluster.node(victim)->Crash();
  });
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(50), [&] {
    cluster.node(coordinator)
        ->kv()
        ->Write(424, "too-late", [&](KvOutcome o, std::string) { outcome = o; });
  });
  // Restart 30s after the write — 20s past the 10s TTL.
  cluster.sim().ScheduleAfter(VirtualDuration::Seconds(80), [&] {
    cluster.node(victim)->Restart({0, 1, 2});
  });
  RunResult r = cluster.Run();
  EXPECT_EQ(outcome, KvOutcome::kOk);
  const KvService* coord_kv = cluster.node(coordinator)->kv();
  EXPECT_GE(coord_kv->stats().hints_queued, 1);
  EXPECT_GE(coord_kv->stats().hints_expired, 1);
  EXPECT_EQ(coord_kv->stats().hints_replayed, 0);
  // The expired hint never reached the victim.
  EXPECT_EQ(cluster.node(victim)->kv()->storage().TimestampOf(424), 0);
  EXPECT_GE(r.kv_hints_expired, 1);
}

// The load driver under ONE consistency: per-level op counts and WAL bytes
// land in RunResult, and the WAL-on data path still conserves every client
// request.
TEST(KvDurabilityTest, ConsistencyLevelAndWalCountersExport) {
  Cluster::Options options = DurableKvCluster(8, VirtualDuration::Seconds(120));
  options.config.kv_consistency = KvConsistency::kOne;
  options.kv_ops_per_second = 50;
  Cluster cluster(std::move(options));
  RunResult r = cluster.Run();
  EXPECT_GT(r.kv_issued, 0);
  EXPECT_EQ(r.kv_issued,
            r.kv_ok + r.kv_unavailable + r.kv_timeout + r.kv_inflight_at_stop);
  EXPECT_GT(r.kv_ops_one, 0);
  EXPECT_EQ(r.kv_ops_quorum, 0);
  EXPECT_EQ(r.kv_ops_all, 0);
  EXPECT_GT(r.kv_wal_bytes, 0);
  // ONE does not give intersecting read/write sets: the history checker must
  // have declared itself off rather than risk false alarms.
  EXPECT_FALSE(r.invariants.kv_checked);
}

// Memory charging: the data path's footprint (WAL + memtable + hints) is
// charged to the per-machine model under "kv-storage", so a loaded WAL run
// peaks strictly higher than the same run without KV load.
TEST(KvDurabilityTest, KvStorageFootprintIsCharged) {
  Cluster::Options loaded = DurableKvCluster(8, VirtualDuration::Seconds(120));
  loaded.kv_ops_per_second = 100;
  Cluster with_load(std::move(loaded));
  RunResult r_loaded = with_load.Run();

  Cluster::Options idle = DurableKvCluster(8, VirtualDuration::Seconds(120));
  Cluster without_load(std::move(idle));
  RunResult r_idle = without_load.Run();

  EXPECT_GT(r_loaded.kv_wal_bytes, 0);
  EXPECT_GT(r_loaded.peak_memory_bytes, r_idle.peak_memory_bytes);
}

}  // namespace
}  // namespace scalecheck
