// Replay-divergence policy: what happens when a PIL replay misses the memo
// DB. kFallbackToModelled keeps the paper's iterative-memoization behaviour,
// kWarn taints the verdict, kStrict aborts the run — and in every case the
// drift report says what diverged first, where, and in what order context.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/pil/boundary.h"
#include "src/scalecheck/bug_catalog.h"
#include "src/scalecheck/scale_check.h"

namespace scalecheck {
namespace {

class ReplayPolicyFixture : public ::testing::Test {
 protected:
  ReplayPolicyFixture() : sim_(1) {
    MachineSpec spec;
    spec.cores = 1.0;
    spec.ctx_switch_penalty = 0.0;
    machine_ = std::make_unique<Machine>(&sim_, 0, spec);
    thread_ = std::make_unique<SimThread>(&sim_, machine_.get(), "t");
  }

  static PilBoundary::ComputeOutput Compute() {
    PilBoundary::ComputeOutput out;
    out.output = {0xaa, 0xbb};
    out.work = 1'000'000'000;
    return out;
  }

  void RunMissingReplay(PilBoundary* boundary) {
    Job job("f");
    boundary->Apply(
        &job, /*function=*/1, [] { return DigestValue{123, 456}; },
        [] { return Compute(); }, [](const std::vector<uint8_t>&, bool) {});
    thread_->Enqueue(std::move(job));
    sim_.RunUntilIdle();
  }

  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<SimThread> thread_;
};

TEST_F(ReplayPolicyFixture, FallbackRecordsDriftAndContinues) {
  MemoStore store;  // empty: guaranteed miss
  PilBoundary boundary(&sim_, PilMode::kReplay, &store, 1e9);
  boundary.set_order_context_fn([] { return std::string("ctx=unit"); });
  ASSERT_EQ(boundary.replay_policy(), ReplayPolicy::kFallbackToModelled);

  RunMissingReplay(&boundary);
  const DriftReport& drift = boundary.drift();
  EXPECT_EQ(drift.misses, 1u);
  EXPECT_TRUE(drift.diverged);
  EXPECT_FALSE(drift.aborted);
  EXPECT_EQ(drift.first_function, 1u);
  EXPECT_EQ(drift.first_call_index, 0u);
  EXPECT_EQ(drift.order_context, "ctx=unit");
  // Fallback still executed the modelled path to completion.
  EXPECT_NEAR(sim_.Now().seconds(), 1.0, 1e-6);
}

TEST_F(ReplayPolicyFixture, StrictAbortsTheSimulation) {
  MemoStore store;
  PilBoundary boundary(&sim_, PilMode::kReplay, &store, 1e9);
  boundary.set_replay_policy(ReplayPolicy::kStrict);

  // A sentinel event far in the future: a strict divergence must stop the
  // run before virtual time ever gets there.
  bool sentinel_ran = false;
  sim_.ScheduleAt(VirtualTime::FromNanos(VirtualDuration::Seconds(100).nanos()),
                  [&] { sentinel_ran = true; });
  RunMissingReplay(&boundary);

  EXPECT_TRUE(boundary.drift().diverged);
  EXPECT_TRUE(boundary.drift().aborted);
  EXPECT_FALSE(sentinel_ran);
  EXPECT_LT(sim_.Now().seconds(), 100.0);
}

TEST_F(ReplayPolicyFixture, PolicyNamesRoundTrip) {
  EXPECT_STREQ(ReplayPolicyName(ReplayPolicy::kFallbackToModelled), "fallback");
  EXPECT_STREQ(ReplayPolicyName(ReplayPolicy::kWarn), "warn");
  EXPECT_STREQ(ReplayPolicyName(ReplayPolicy::kStrict), "strict");
}

// ---- End-to-end through Cluster / RunSingle ---------------------------------

RunResult ReplayAgainstEmptyStore(ReplayPolicy policy, uint64_t seed) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.horizon = VirtualDuration::Seconds(90);
  spec.replay_policy = policy;
  MemoStore empty;  // nothing memoized: the replay diverges immediately
  RunOptions options;
  options.memo_store = &empty;
  return RunSingle(spec, 16, RunMode::kPilReplay, seed, options);
}

TEST(ReplayPolicyEndToEnd, FallbackDivergesButVerdictStaysOk) {
  RunResult r = ReplayAgainstEmptyStore(ReplayPolicy::kFallbackToModelled, 11);
  EXPECT_GT(r.replay_drift.misses, 0u);
  EXPECT_TRUE(r.replay_drift.diverged);
  EXPECT_FALSE(r.replay_drift.aborted);
  EXPECT_EQ(r.fidelity.verdict, FidelityVerdict::kOk) << r.fidelity.ToJson();
  // The drift report names the first divergent call precisely.
  EXPECT_FALSE(r.replay_drift.first_function.empty());
  EXPECT_FALSE(r.replay_drift.first_digest.empty());
  EXPECT_FALSE(r.replay_drift.order_context.empty());
  EXPECT_EQ(r.replay_drift.first_call_index, 0u);
}

TEST(ReplayPolicyEndToEnd, WarnDegradesTheVerdict) {
  RunResult r = ReplayAgainstEmptyStore(ReplayPolicy::kWarn, 11);
  EXPECT_TRUE(r.replay_drift.diverged);
  EXPECT_FALSE(r.replay_drift.aborted);
  EXPECT_EQ(r.fidelity.verdict, FidelityVerdict::kDegraded) << r.fidelity.ToJson();
  EXPECT_EQ(r.fidelity.violated_budget, "replay_divergence");
}

TEST(ReplayPolicyEndToEnd, StrictAbortsAndInvalidates) {
  RunResult strict = ReplayAgainstEmptyStore(ReplayPolicy::kStrict, 11);
  EXPECT_TRUE(strict.replay_drift.aborted);
  EXPECT_EQ(strict.fidelity.verdict, FidelityVerdict::kInvalid)
      << strict.fidelity.ToJson();
  EXPECT_EQ(strict.fidelity.violated_budget, "replay_divergence");

  // Aborting at the first divergence does strictly less work than falling
  // back and running the horizon out.
  RunResult fallback = ReplayAgainstEmptyStore(ReplayPolicy::kFallbackToModelled, 11);
  EXPECT_LE(strict.replay_drift.misses, fallback.replay_drift.misses);
  EXPECT_LT(strict.pil.replay_misses + strict.pil.replay_hits,
            fallback.pil.replay_misses + fallback.pil.replay_hits);
}

TEST(ReplayPolicyEndToEnd, StrictAbortIsDeterministic) {
  RunResult a = ReplayAgainstEmptyStore(ReplayPolicy::kStrict, 42);
  RunResult b = ReplayAgainstEmptyStore(ReplayPolicy::kStrict, 42);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(ReplayPolicyEndToEnd, FaithfulReplayReportsNoAbort) {
  BugSpec spec = BugCatalog::Get("C3831");
  spec.horizon = VirtualDuration::Seconds(90);
  spec.replay_policy = ReplayPolicy::kStrict;

  MemoStore store;
  RunOptions memoize_options;
  memoize_options.memo_store = &store;
  RunSingle(spec, 16, RunMode::kMemoize, 11, memoize_options);

  RunOptions replay_options;
  replay_options.memo_store = &store;
  RunResult r = RunSingle(spec, 16, RunMode::kPilReplay, 11, replay_options);
  EXPECT_GT(r.pil.replay_hits, 0u);
  EXPECT_FALSE(r.replay_drift.aborted) << r.ToJson();
  EXPECT_EQ(r.fidelity.verdict, FidelityVerdict::kOk) << r.fidelity.ToJson();
}

}  // namespace
}  // namespace scalecheck
