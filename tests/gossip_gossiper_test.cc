#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/gossip/gossiper.h"

namespace scalecheck {
namespace {

// Runs a full SYN/ACK/ACK2 exchange from `a` to `b` (a initiates).
void Exchange(Gossiper* a, Gossiper* b) {
  std::vector<GossipDigest> syn = a->MakeSynDigests();
  std::vector<GossipDigest> requests;
  EndpointStateMap ack_states;
  b->HandleSyn(syn, &requests, &ack_states);
  a->ApplyStates(ack_states);                                  // ACK receipt
  EndpointStateMap ack2_states = a->StatesForRequests(requests);
  b->ApplyStates(ack2_states);                                 // ACK2 receipt
}

VersionedValue NormalStatus(std::vector<Token> tokens) {
  VersionedValue v;
  v.status = StatusKind::kNormal;
  v.tokens = std::move(tokens);
  return v;
}

TEST(GossiperTest, HeartbeatVersionsIncrease) {
  Gossiper g(1, 1, {});
  int64_t v0 = g.LocalState().heartbeat().version;
  g.IncrementHeartbeat();
  g.IncrementHeartbeat();
  EXPECT_GT(g.LocalState().heartbeat().version, v0);
  EXPECT_EQ(g.LocalState().MaxVersion(), g.LocalState().heartbeat().version);
}

TEST(GossiperTest, TwoNodeExchangeConverges) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  a.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({100}));
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  a.AddKnownEndpoint(2, EndpointState(0));  // knows address only
  Exchange(&a, &b);
  // After one full exchange both know both (a learns b via ACK, b learns a
  // via ACK2 request).
  ASSERT_NE(a.StateOf(2), nullptr);
  ASSERT_NE(b.StateOf(1), nullptr);
  EXPECT_EQ(a.StateOf(2)->Status(), StatusKind::kNormal);
  EXPECT_EQ(b.StateOf(1)->Tokens(), std::vector<Token>{100});
}

TEST(GossiperTest, DeltasOnlyCarryNewVersions) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  a.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({100}));
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  a.AddKnownEndpoint(2, EndpointState(0));
  Exchange(&a, &b);
  Exchange(&a, &b);

  // Now only a's heartbeat advances; the next ACK for a must not re-ship the
  // STATUS app state.
  a.IncrementHeartbeat();
  std::vector<GossipDigest> syn = a.MakeSynDigests();
  std::vector<GossipDigest> requests;
  EndpointStateMap send;
  b.HandleSyn(syn, &requests, &send);
  ASSERT_EQ(requests.size(), 1u);  // b wants a's delta
  EXPECT_EQ(requests[0].endpoint, 1);
  EndpointStateMap delta = a.StatesForRequests(requests);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_TRUE(delta.at(1).app_states().empty());  // heartbeat only
}

TEST(GossiperTest, StatusChangeCallbackFires) {
  std::vector<std::pair<NodeId, StatusKind>> changes;
  Gossiper::Callbacks callbacks;
  callbacks.on_status_change = [&](NodeId ep, StatusKind, StatusKind now) {
    changes.emplace_back(ep, now);
  };
  Gossiper a(1, 1, callbacks);

  Gossiper b(2, 1, {});
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  EndpointStateMap states;
  states.emplace(2, b.LocalState());
  a.ApplyStates(states);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].first, 2);
  EXPECT_EQ(changes[0].second, StatusKind::kNormal);

  // Same state again: no duplicate callback (version not newer).
  a.ApplyStates(states);
  EXPECT_EQ(changes.size(), 1u);

  // Status upgrade to LEAVING.
  VersionedValue leaving;
  leaving.status = StatusKind::kLeaving;
  b.SetLocalState(ApplicationStateKey::kStatus, leaving);
  EndpointStateMap states2;
  states2.emplace(2, b.LocalState());
  a.ApplyStates(states2);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1].second, StatusKind::kLeaving);
}

TEST(GossiperTest, HeartbeatCallbackOnlyOnAdvance) {
  int heartbeats = 0;
  Gossiper::Callbacks callbacks;
  callbacks.on_heartbeat = [&](NodeId) { ++heartbeats; };
  Gossiper a(1, 1, callbacks);
  Gossiper b(2, 1, {});
  b.IncrementHeartbeat();
  EndpointStateMap states;
  states.emplace(2, b.LocalState());
  a.ApplyStates(states);  // discovery
  EXPECT_EQ(heartbeats, 1);
  a.ApplyStates(states);  // same version: no callback
  EXPECT_EQ(heartbeats, 1);
  b.IncrementHeartbeat();
  EndpointStateMap newer;
  newer.emplace(2, b.LocalState());
  a.ApplyStates(newer);
  EXPECT_EQ(heartbeats, 2);
}

TEST(GossiperTest, RestartReplacesState) {
  int restarts = 0;
  Gossiper::Callbacks callbacks;
  callbacks.on_restart = [&](NodeId) { ++restarts; };
  Gossiper a(1, 1, callbacks);

  EndpointState old_instance(/*generation=*/1);
  old_instance.mutable_heartbeat().version = 50;
  EndpointStateMap states;
  states.emplace(2, old_instance);
  a.ApplyStates(states);

  EndpointState new_instance(/*generation=*/2);  // rebooted
  new_instance.mutable_heartbeat().version = 1;
  EndpointStateMap states2;
  states2.emplace(2, new_instance);
  a.ApplyStates(states2);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(a.StateOf(2)->heartbeat().generation, 2);
  EXPECT_EQ(a.StateOf(2)->heartbeat().version, 1);
}

TEST(GossiperTest, StaleGenerationIgnored) {
  Gossiper a(1, 1, {});
  EndpointState fresh(/*generation=*/5);
  fresh.mutable_heartbeat().version = 10;
  EndpointStateMap states;
  states.emplace(2, fresh);
  a.ApplyStates(states);

  EndpointState stale(/*generation=*/3);
  stale.mutable_heartbeat().version = 99;
  EndpointStateMap stale_states;
  stale_states.emplace(2, stale);
  a.ApplyStates(stale_states);
  EXPECT_EQ(a.StateOf(2)->heartbeat().generation, 5);
  EXPECT_EQ(a.StateOf(2)->heartbeat().version, 10);
}

TEST(GossiperTest, SelfStateNeverOverwrittenByGossip) {
  Gossiper a(1, 1, {});
  a.IncrementHeartbeat();
  int64_t my_version = a.LocalState().heartbeat().version;
  EndpointState impostor(/*generation=*/99);
  impostor.mutable_heartbeat().version = 1000;
  EndpointStateMap states;
  states.emplace(1, impostor);
  a.ApplyStates(states);
  EXPECT_EQ(a.LocalState().heartbeat().generation, 1);
  EXPECT_EQ(a.LocalState().heartbeat().version, my_version);
}

TEST(GossiperTest, UnknownEndpointsInSynAreSentBack) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  b.AddKnownEndpoint(3, EndpointState(1));  // b knows a third node
  std::vector<GossipDigest> syn = a.MakeSynDigests();  // mentions only 1
  std::vector<GossipDigest> requests;
  EndpointStateMap send;
  b.HandleSyn(syn, &requests, &send);
  // b must push its knowledge of 2 (itself) and 3.
  EXPECT_EQ(send.count(2), 1u);
  EXPECT_EQ(send.count(3), 1u);
  // and request node 1's state, unknown to b.
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].endpoint, 1);
}

TEST(GossiperTest, EpidemicConvergenceAcrossFiveNodes) {
  // Ring of gossipers; repeated random-ish exchanges must converge all maps.
  std::vector<std::unique_ptr<Gossiper>> nodes;
  for (NodeId id = 0; id < 5; ++id) {
    nodes.push_back(std::make_unique<Gossiper>(id, 1, Gossiper::Callbacks{}));
    nodes.back()->SetLocalState(ApplicationStateKey::kStatus,
                                NormalStatus({static_cast<Token>(id * 1000)}));
  }
  // Everyone knows only node 0 initially.
  for (NodeId id = 1; id < 5; ++id) {
    nodes[static_cast<size_t>(id)]->AddKnownEndpoint(0, EndpointState(0));
  }
  for (int round = 0; round < 6; ++round) {
    for (NodeId id = 0; id < 5; ++id) {
      nodes[static_cast<size_t>(id)]->IncrementHeartbeat();
      std::vector<NodeId> peers = nodes[static_cast<size_t>(id)]->LiveEndpoints();
      if (peers.empty()) {
        continue;
      }
      NodeId peer = peers[static_cast<size_t>(round) % peers.size()];
      Exchange(nodes[static_cast<size_t>(id)].get(),
               nodes[static_cast<size_t>(peer)].get());
    }
  }
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(nodes[static_cast<size_t>(id)]->endpoints().size(), 5u)
        << "node " << id << " did not converge";
  }
}

TEST(GossiperTest, WorkEstimatesScaleWithPayload) {
  Gossiper::WorkCosts costs;
  SynPayload small_syn;
  small_syn.digests.resize(2);
  SynPayload big_syn;
  big_syn.digests.resize(200);
  EXPECT_LT(Gossiper::EstimateSynWork(small_syn, costs),
            Gossiper::EstimateSynWork(big_syn, costs));

  AckPayload ack;
  ack.states.emplace(1, EndpointState(1));
  WorkUnits one = Gossiper::EstimateAckWork(ack, costs);
  ack.states.emplace(2, EndpointState(1));
  EXPECT_GT(Gossiper::EstimateAckWork(ack, costs), one);
}

}  // namespace
}  // namespace scalecheck
