#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/gossip/gossiper.h"

namespace scalecheck {
namespace {

// Runs a full SYN/ACK/ACK2 exchange from `a` to `b` (a initiates).
void Exchange(Gossiper* a, Gossiper* b) {
  std::vector<GossipDigest> syn = a->MakeSynDigests();
  std::vector<GossipDigest> requests;
  EndpointStateMap ack_states;
  b->HandleSyn(syn, &requests, &ack_states);
  a->ApplyStates(ack_states);                                  // ACK receipt
  EndpointStateMap ack2_states = a->StatesForRequests(requests);
  b->ApplyStates(ack2_states);                                 // ACK2 receipt
}

VersionedValue NormalStatus(std::vector<Token> tokens) {
  VersionedValue v;
  v.status = StatusKind::kNormal;
  v.tokens = std::move(tokens);
  return v;
}

TEST(GossiperTest, HeartbeatVersionsIncrease) {
  Gossiper g(1, 1, {});
  int64_t v0 = g.LocalState().heartbeat().version;
  g.IncrementHeartbeat();
  g.IncrementHeartbeat();
  EXPECT_GT(g.LocalState().heartbeat().version, v0);
  EXPECT_EQ(g.LocalState().MaxVersion(), g.LocalState().heartbeat().version);
}

TEST(GossiperTest, TwoNodeExchangeConverges) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  a.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({100}));
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  a.AddKnownEndpoint(2, EndpointState(0));  // knows address only
  Exchange(&a, &b);
  // After one full exchange both know both (a learns b via ACK, b learns a
  // via ACK2 request).
  ASSERT_NE(a.StateOf(2), nullptr);
  ASSERT_NE(b.StateOf(1), nullptr);
  EXPECT_EQ(a.StateOf(2)->Status(), StatusKind::kNormal);
  EXPECT_EQ(b.StateOf(1)->Tokens(), std::vector<Token>{100});
}

TEST(GossiperTest, DeltasOnlyCarryNewVersions) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  a.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({100}));
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  a.AddKnownEndpoint(2, EndpointState(0));
  Exchange(&a, &b);
  Exchange(&a, &b);

  // Now only a's heartbeat advances; the next ACK for a must not re-ship the
  // STATUS app state.
  a.IncrementHeartbeat();
  std::vector<GossipDigest> syn = a.MakeSynDigests();
  std::vector<GossipDigest> requests;
  EndpointStateMap send;
  b.HandleSyn(syn, &requests, &send);
  ASSERT_EQ(requests.size(), 1u);  // b wants a's delta
  EXPECT_EQ(requests[0].endpoint, 1);
  EndpointStateMap delta = a.StatesForRequests(requests);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_TRUE(delta.at(1).app_states().empty());  // heartbeat only
}

TEST(GossiperTest, StatusChangeCallbackFires) {
  std::vector<std::pair<NodeId, StatusKind>> changes;
  Gossiper::Callbacks callbacks;
  callbacks.on_status_change = [&](NodeId ep, StatusKind, StatusKind now) {
    changes.emplace_back(ep, now);
  };
  Gossiper a(1, 1, callbacks);

  Gossiper b(2, 1, {});
  b.SetLocalState(ApplicationStateKey::kStatus, NormalStatus({200}));
  EndpointStateMap states;
  states.emplace(2, b.LocalState());
  a.ApplyStates(states);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].first, 2);
  EXPECT_EQ(changes[0].second, StatusKind::kNormal);

  // Same state again: no duplicate callback (version not newer).
  a.ApplyStates(states);
  EXPECT_EQ(changes.size(), 1u);

  // Status upgrade to LEAVING.
  VersionedValue leaving;
  leaving.status = StatusKind::kLeaving;
  b.SetLocalState(ApplicationStateKey::kStatus, leaving);
  EndpointStateMap states2;
  states2.emplace(2, b.LocalState());
  a.ApplyStates(states2);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[1].second, StatusKind::kLeaving);
}

TEST(GossiperTest, HeartbeatCallbackOnlyOnAdvance) {
  int heartbeats = 0;
  Gossiper::Callbacks callbacks;
  callbacks.on_heartbeat = [&](NodeId) { ++heartbeats; };
  Gossiper a(1, 1, callbacks);
  Gossiper b(2, 1, {});
  b.IncrementHeartbeat();
  EndpointStateMap states;
  states.emplace(2, b.LocalState());
  a.ApplyStates(states);  // discovery
  EXPECT_EQ(heartbeats, 1);
  a.ApplyStates(states);  // same version: no callback
  EXPECT_EQ(heartbeats, 1);
  b.IncrementHeartbeat();
  EndpointStateMap newer;
  newer.emplace(2, b.LocalState());
  a.ApplyStates(newer);
  EXPECT_EQ(heartbeats, 2);
}

TEST(GossiperTest, RestartReplacesState) {
  int restarts = 0;
  Gossiper::Callbacks callbacks;
  callbacks.on_restart = [&](NodeId) { ++restarts; };
  Gossiper a(1, 1, callbacks);

  EndpointState old_instance(/*generation=*/1);
  old_instance.mutable_heartbeat().version = 50;
  EndpointStateMap states;
  states.emplace(2, old_instance);
  a.ApplyStates(states);

  EndpointState new_instance(/*generation=*/2);  // rebooted
  new_instance.mutable_heartbeat().version = 1;
  EndpointStateMap states2;
  states2.emplace(2, new_instance);
  a.ApplyStates(states2);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(a.StateOf(2)->heartbeat().generation, 2);
  EXPECT_EQ(a.StateOf(2)->heartbeat().version, 1);
}

TEST(GossiperTest, StaleGenerationIgnored) {
  Gossiper a(1, 1, {});
  EndpointState fresh(/*generation=*/5);
  fresh.mutable_heartbeat().version = 10;
  EndpointStateMap states;
  states.emplace(2, fresh);
  a.ApplyStates(states);

  EndpointState stale(/*generation=*/3);
  stale.mutable_heartbeat().version = 99;
  EndpointStateMap stale_states;
  stale_states.emplace(2, stale);
  a.ApplyStates(stale_states);
  EXPECT_EQ(a.StateOf(2)->heartbeat().generation, 5);
  EXPECT_EQ(a.StateOf(2)->heartbeat().version, 10);
}

TEST(GossiperTest, SelfStateNeverOverwrittenByGossip) {
  Gossiper a(1, 1, {});
  a.IncrementHeartbeat();
  int64_t my_version = a.LocalState().heartbeat().version;
  EndpointState impostor(/*generation=*/99);
  impostor.mutable_heartbeat().version = 1000;
  EndpointStateMap states;
  states.emplace(1, impostor);
  a.ApplyStates(states);
  EXPECT_EQ(a.LocalState().heartbeat().generation, 1);
  EXPECT_EQ(a.LocalState().heartbeat().version, my_version);
}

TEST(GossiperTest, UnknownEndpointsInSynAreSentBack) {
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  b.AddKnownEndpoint(3, EndpointState(1));  // b knows a third node
  std::vector<GossipDigest> syn = a.MakeSynDigests();  // mentions only 1
  std::vector<GossipDigest> requests;
  EndpointStateMap send;
  b.HandleSyn(syn, &requests, &send);
  // b must push its knowledge of 2 (itself) and 3.
  EXPECT_EQ(send.count(2), 1u);
  EXPECT_EQ(send.count(3), 1u);
  // and request node 1's state, unknown to b.
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].endpoint, 1);
}

TEST(GossiperTest, EpidemicConvergenceAcrossFiveNodes) {
  // Ring of gossipers; repeated random-ish exchanges must converge all maps.
  std::vector<std::unique_ptr<Gossiper>> nodes;
  for (NodeId id = 0; id < 5; ++id) {
    nodes.push_back(std::make_unique<Gossiper>(id, 1, Gossiper::Callbacks{}));
    nodes.back()->SetLocalState(ApplicationStateKey::kStatus,
                                NormalStatus({static_cast<Token>(id * 1000)}));
  }
  // Everyone knows only node 0 initially.
  for (NodeId id = 1; id < 5; ++id) {
    nodes[static_cast<size_t>(id)]->AddKnownEndpoint(0, EndpointState(0));
  }
  for (int round = 0; round < 6; ++round) {
    for (NodeId id = 0; id < 5; ++id) {
      nodes[static_cast<size_t>(id)]->IncrementHeartbeat();
      std::vector<NodeId> peers = nodes[static_cast<size_t>(id)]->LiveEndpoints();
      if (peers.empty()) {
        continue;
      }
      NodeId peer = peers[static_cast<size_t>(round) % peers.size()];
      Exchange(nodes[static_cast<size_t>(id)].get(),
               nodes[static_cast<size_t>(peer)].get());
    }
  }
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(nodes[static_cast<size_t>(id)]->endpoints().size(), 5u)
        << "node " << id << " did not converge";
  }
}

TEST(GossiperTest, UnreachableViewTracksDeadKnownEndpoints) {
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(2, EndpointState(1));
  g.AddKnownEndpoint(3, EndpointState(1));
  EXPECT_TRUE(g.UnreachableEndpoints().empty());  // both start alive
  g.MarkDead(3);
  EXPECT_EQ(g.UnreachableEndpoints(), std::vector<NodeId>{3});
  EXPECT_EQ(g.LiveEndpoints(), std::vector<NodeId>{2});
  g.MarkDead(2);
  EXPECT_EQ(g.UnreachableEndpoints(), (std::vector<NodeId>{2, 3}));  // sorted
  g.MarkAlive(3);
  EXPECT_EQ(g.UnreachableEndpoints(), std::vector<NodeId>{2});
  g.RemoveEndpoint(2);
  EXPECT_TRUE(g.UnreachableEndpoints().empty());
}

TEST(GossiperTest, MarkDeadOnUnknownEndpointLeavesNoTrace) {
  // Regression: MarkDead used to create alive_[ep]=false entries for
  // endpoints the gossiper had never heard of (the OnStatusChange path can
  // race endpoint removal), leaking map entries forever.
  Gossiper g(1, 1, {});
  g.MarkDead(42);
  EXPECT_FALSE(g.IsAlive(42));
  EXPECT_TRUE(g.UnreachableEndpoints().empty());
  EXPECT_TRUE(g.LiveEndpoints().empty());
  // Learning the endpoint later starts from the normal born-alive state;
  // the phantom MarkDead must not pre-poison it.
  g.AddKnownEndpoint(42, EndpointState(1));
  EXPECT_TRUE(g.IsAlive(42));
  EXPECT_EQ(g.LiveEndpoints(), std::vector<NodeId>{42});
}

TEST(GossiperTest, DepartedEndpointsAreNotUnreachable) {
  // LEFT/REMOVED peers are dead forever by design; gossiping to them would
  // resurrect tombstones. They must never enter the escape-hatch target set.
  Gossiper a(1, 1, {});
  Gossiper b(2, 1, {});
  VersionedValue left;
  left.status = StatusKind::kLeft;
  left.tokens = {200};
  b.SetLocalState(ApplicationStateKey::kStatus, left);
  a.AddKnownEndpoint(2, EndpointState(0));
  Exchange(&a, &b);
  ASSERT_NE(a.StateOf(2), nullptr);
  ASSERT_EQ(a.StateOf(2)->Status(), StatusKind::kLeft);
  a.MarkDead(2);
  EXPECT_TRUE(a.UnreachableEndpoints().empty());
}

TEST(GossiperTest, PickUnreachableConsumesNoDrawsWhenSetIsEmpty) {
  // The escape hatch must be RNG-silent on healthy clusters so fault-free
  // runs keep byte-identical streams with pre-escape-hatch builds.
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(2, EndpointState(1));  // alive -> unreachable empty
  Rng used(777);
  Rng untouched(777);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(g.PickUnreachableSynTarget(&used), kInvalidNode);
  }
  EXPECT_EQ(used.UniformInt(0, 1 << 30), untouched.UniformInt(0, 1 << 30));
}

TEST(GossiperTest, PickUnreachableIsCertainWhenNoLivePeersRemain) {
  // |unreachable| / (|live| + 1) with live empty is >= 1: an islanded node
  // SYNs an unreachable peer every round, which is what re-knits the ring.
  Gossiper g(1, 1, {});
  g.AddKnownEndpoint(2, EndpointState(1));
  g.AddKnownEndpoint(3, EndpointState(1));
  g.MarkDead(2);
  g.MarkDead(3);
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    NodeId pick = g.PickUnreachableSynTarget(&rng);
    EXPECT_TRUE(pick == 2 || pick == 3) << pick;
  }
}

TEST(GossiperTest, PickUnreachableIsDeterministicPerSeed) {
  auto build = [] {
    auto g = std::make_unique<Gossiper>(1, 1, Gossiper::Callbacks{});
    for (NodeId ep = 2; ep <= 9; ++ep) {
      g->AddKnownEndpoint(ep, EndpointState(1));
    }
    g->MarkDead(4);
    g->MarkDead(7);
    return g;
  };
  auto a = build();
  auto b = build();
  Rng rng_a(31337);
  Rng rng_b(31337);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a->PickUnreachableSynTarget(&rng_a),
              b->PickUnreachableSynTarget(&rng_b));
  }
}

TEST(GossiperTest, WorkEstimatesScaleWithPayload) {
  Gossiper::WorkCosts costs;
  SynPayload small_syn;
  small_syn.digests.resize(2);
  SynPayload big_syn;
  big_syn.digests.resize(200);
  EXPECT_LT(Gossiper::EstimateSynWork(small_syn, costs),
            Gossiper::EstimateSynWork(big_syn, costs));

  AckPayload ack;
  ack.states.emplace(1, EndpointState(1));
  WorkUnits one = Gossiper::EstimateAckWork(ack, costs);
  ack.states.emplace(2, EndpointState(1));
  EXPECT_GT(Gossiper::EstimateAckWork(ack, costs), one);
}

}  // namespace
}  // namespace scalecheck
